//! A generic "plain compute kernel" runner for the simulated device.
//!
//! The GPU baselines (cuNSearch-like grid search, FRNN-like grid KNN, the
//! PCLOctree-like octree search) are data-parallel kernels that run on the
//! SMs without touching the RT cores. Instead of hand-writing a warp
//! executor for each, they describe the per-thread work through
//! [`ThreadWork`] — how many arithmetic operations the thread performs and
//! which global-memory addresses it reads — and [`run_sm_kernel`] charges
//! that work to the device with the same SIMT/lockstep and cache modelling
//! the RT launches get:
//!
//! * a warp's arithmetic time is `max` over its lanes (lockstep execution),
//! * its memory traffic is the coalesced union of its lanes' addresses,
//! * SIMT efficiency is the ratio of useful lane work to issued warp work.

use crate::config::DeviceConfig;
use crate::device::Device;
use crate::metrics::KernelMetrics;

/// The simulated cost of one kernel thread, as reported by the kernel body.
#[derive(Debug, Clone, Default)]
pub struct ThreadWork {
    /// Number of arithmetic operations (distance tests, comparisons, queue
    /// updates) the thread performs; charged at `CostModel::sm_op_cycles`.
    pub compute_ops: u64,
    /// Global-memory byte addresses the thread reads (point records, cell
    /// offsets, tree nodes). Coalesced per warp before being charged.
    pub mem_addresses: Vec<u64>,
}

impl ThreadWork {
    /// Convenience constructor.
    pub fn new(compute_ops: u64, mem_addresses: Vec<u64>) -> Self {
        ThreadWork {
            compute_ops,
            mem_addresses,
        }
    }
}

/// Optional knobs for [`run_sm_kernel`].
#[derive(Debug, Clone, Copy)]
pub struct SmKernelConfig {
    /// Multiplier applied to every thread's `compute_ops` (lets a caller
    /// express that its "operation" is heavier than the canonical SM op).
    pub op_weight: f64,
}

impl Default for SmKernelConfig {
    fn default() -> Self {
        SmKernelConfig { op_weight: 1.0 }
    }
}

/// Run a kernel of `num_threads` threads on `device`. `thread_fn(i)`
/// performs thread `i`'s algorithmic work on the host (producing whatever
/// results the caller accumulates on its own) and returns the simulated cost
/// description for that thread.
///
/// Returns per-thread results of `thread_fn` plus the launch metrics.
pub fn run_sm_kernel<R, F>(
    device: &Device,
    num_threads: usize,
    config: SmKernelConfig,
    thread_fn: F,
) -> (Vec<R>, KernelMetrics)
where
    R: Send + Default + Clone,
    F: Fn(usize) -> (R, ThreadWork) + Sync,
{
    let warp_size = device.config().warp_size as f64;
    device.run_warps(num_threads, |range, shard| {
        let mut results = Vec::with_capacity(range.len());
        let mut max_ops = 0u64;
        let mut total_ops = 0u64;
        let mut addresses: Vec<u64> = Vec::new();
        for i in range.clone() {
            let (r, work) = thread_fn(i);
            results.push(r);
            max_ops = max_ops.max(work.compute_ops);
            total_ops += work.compute_ops;
            addresses.extend_from_slice(&work.mem_addresses);
        }
        // Lockstep arithmetic: the warp runs as long as its slowest lane.
        shard.charge_sm_ops(max_ops as f64 * config.op_weight);
        // Coalesced memory traffic for the whole warp.
        shard.access_warp_memory(&addresses);
        // Useful work = what lanes needed; issued = slowest lane times the
        // warp width (inactive lanes still occupy issue slots).
        shard.note_simt_work(total_ops as f64, max_ops as f64 * warp_size);
        results
    })
}

/// Estimate the device-resident footprint of a point cloud plus per-query
/// result buffers — shared by RTNN and the baselines so OOM behaviour is
/// comparable.
pub fn point_cloud_bytes(num_points: usize, num_queries: usize, neighbors_per_query: usize) -> u64 {
    let points = num_points as u64 * 12; // 3 x f32
    let queries = num_queries as u64 * 12;
    let results = num_queries as u64 * neighbors_per_query as u64 * 4; // u32 ids
    points + queries + results
}

/// Helper: the byte address of point `i`'s coordinates in the simulated
/// global-memory layout (12-byte records in a flat array).
#[inline]
pub fn point_address(i: u32) -> u64 {
    POINTS_BASE + i as u64 * 12
}

/// Helper: the byte address of cell `i`'s start offset in a grid structure.
#[inline]
pub fn cell_offset_address(i: usize) -> u64 {
    CELLS_BASE + i as u64 * 4
}

/// Helper: the byte address of tree node `i` for SM-traversed trees
/// (octree / k-d tree baselines); nodes are 32-byte records.
#[inline]
pub fn tree_node_address(i: u32) -> u64 {
    TREE_BASE + i as u64 * 32
}

const POINTS_BASE: u64 = 0x1000_0000;
const CELLS_BASE: u64 = 0x4000_0000;
const TREE_BASE: u64 = 0x7000_0000;

/// Base address of BVH node storage (used by `rtnn-optix`).
pub const BVH_NODES_BASE: u64 = 0xA000_0000;
/// Base address of BVH primitive-slot storage (used by `rtnn-optix`).
pub const BVH_PRIMS_BASE: u64 = 0xD000_0000;

/// Access check helper so configuration mistakes fail loudly in tests.
pub fn validate_device_config(config: &DeviceConfig) -> Result<(), String> {
    if config.num_sms == 0 {
        return Err("device must have at least one SM".into());
    }
    if config.warp_size == 0 {
        return Err("warp size must be positive".into());
    }
    if config.clock_ghz <= 0.0 {
        return Err("clock must be positive".into());
    }
    if config.l1.line_bytes == 0 || config.l2.line_bytes == 0 {
        return Err("cache lines must be non-empty".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_results_and_metrics() {
        let d = Device::tiny_test_device();
        let n = 500;
        let (results, metrics) = run_sm_kernel(&d, n, SmKernelConfig::default(), |i| {
            (i * 2, ThreadWork::new(10, vec![point_address(i as u32)]))
        });
        assert_eq!(results.len(), n);
        assert_eq!(results[123], 246);
        assert!(metrics.time_ms > 0.0);
        assert!(metrics.sm_cycles > 0.0);
        assert_eq!(
            metrics.rt_core_cycles, 0.0,
            "plain kernels never touch RT cores"
        );
        assert!(metrics.memory.l1.accesses > 0);
    }

    #[test]
    fn heavier_ops_cost_more() {
        let d = Device::tiny_test_device();
        let run = |weight: f64| {
            run_sm_kernel(&d, 1000, SmKernelConfig { op_weight: weight }, |_| {
                ((), ThreadWork::new(50, vec![]))
            })
            .1
            .time_ms
        };
        assert!(run(4.0) > run(1.0));
    }

    #[test]
    fn imbalanced_lanes_lower_simt_efficiency() {
        let d = Device::tiny_test_device();
        let balanced = run_sm_kernel(&d, 3200, SmKernelConfig::default(), |_| {
            ((), ThreadWork::new(20, vec![]))
        })
        .1;
        let imbalanced = run_sm_kernel(&d, 3200, SmKernelConfig::default(), |i| {
            let ops = if i % 32 == 0 { 640 } else { 0 };
            ((), ThreadWork::new(ops, vec![]))
        })
        .1;
        assert!(balanced.simt_efficiency > 0.9);
        assert!(imbalanced.simt_efficiency < 0.1);
        // Same total useful ops, but the imbalanced kernel is slower.
        assert!(imbalanced.time_ms >= balanced.time_ms);
    }

    #[test]
    fn coherent_addresses_beat_scattered_addresses() {
        let d = Device::rtx_2080();
        let n = 20_000;
        // Coherent threads keep revisiting a small shared working set (the
        // way spatially-grouped queries revisit the same tree nodes);
        // scattered threads touch a huge address range.
        let coherent = run_sm_kernel(&d, n, SmKernelConfig::default(), |i| {
            (
                (),
                ThreadWork::new(
                    1,
                    vec![
                        point_address((i % 256) as u32),
                        point_address((i % 64) as u32),
                    ],
                ),
            )
        })
        .1;
        let scattered = run_sm_kernel(&d, n, SmKernelConfig::default(), |i| {
            let wild = ((i as u64).wrapping_mul(0x9E3779B97F4A7C15)) % (1 << 30);
            ((), ThreadWork::new(1, vec![POINTS_BASE + wild]))
        })
        .1;
        assert!(coherent.memory.l1_hit_rate() > scattered.memory.l1_hit_rate());
        assert!(coherent.time_ms < scattered.time_ms);
    }

    #[test]
    fn footprint_model_is_monotone() {
        assert!(point_cloud_bytes(1000, 1000, 50) > point_cloud_bytes(100, 100, 50));
        assert_eq!(point_cloud_bytes(0, 0, 0), 0);
    }

    #[test]
    fn address_helpers_do_not_collide() {
        assert!(point_address(1_000_000) < CELLS_BASE);
        assert!(cell_offset_address(10_000_000) < TREE_BASE);
        assert!(tree_node_address(10_000_000) < BVH_NODES_BASE);
    }

    #[test]
    fn config_validation() {
        assert!(validate_device_config(&DeviceConfig::rtx_2080()).is_ok());
        let mut bad = DeviceConfig::tiny_test_device();
        bad.num_sms = 0;
        assert!(validate_device_config(&bad).is_err());
        let mut bad2 = DeviceConfig::tiny_test_device();
        bad2.clock_ghz = 0.0;
        assert!(validate_device_config(&bad2).is_err());
    }
}
