//! # rtnn-gpusim
//!
//! A deterministic, first-order simulator of a Turing-class GPU — the
//! substrate that stands in for the RTX 2080 / 2080 Ti hardware the RTNN
//! paper evaluates on (see DESIGN.md for the substitution argument).
//!
//! The simulator is *not* cycle-accurate. It models exactly the mechanisms
//! the paper's analysis depends on:
//!
//! * **SIMT execution**: work is issued in 32-lane warps; a warp's cost is
//!   dominated by the union of the work its lanes perform (divergent lanes
//!   make the union larger) and by the slowest lane for lockstep shader
//!   execution. The ratio between useful lane-work and issued warp-work is
//!   reported as *SIMT efficiency*, the analogue of the SM occupancy the
//!   paper measures in Figure 6.
//! * **Memory hierarchy**: a per-SM L1 and a (sharded) L2, both
//!   set-associative with LRU replacement, fed with the cache-line addresses
//!   each warp touches (after intra-warp coalescing). Incoherent rays touch
//!   more distinct lines, so their hit rates drop — the second half of
//!   Figure 6.
//! * **RT cores vs. SMs**: BVH node tests are charged at RT-core rates;
//!   intersection-shader work is charged at SM rates, with the
//!   range/KNN/no-sphere-test cost split the paper describes (Sections 3.1,
//!   5.1 and Appendix A).
//! * **Acceleration-structure builds** are charged linearly in the number of
//!   primitives (Figure 15) and **PCIe transfers** linearly in bytes
//!   (the `Data` component of Figure 12).
//!
//! Higher layers (`rtnn-optix` for ray launches, `rtnn-baselines` through
//! [`kernel`] for plain compute kernels) charge their work to a [`Device`],
//! and every experiment in `rtnn-bench` reports the resulting simulated
//! milliseconds.

pub mod cache;
pub mod config;
pub mod device;
pub mod kernel;
pub mod metrics;
pub mod shard;

pub use cache::{CacheConfig, CacheStats, SetAssociativeCache};
pub use config::{CostModel, DeviceConfig, IsShaderKind};
pub use device::{Device, StructureTiming};
pub use kernel::{run_sm_kernel, SmKernelConfig, ThreadWork};
pub use metrics::{FrameAccumulator, KernelMetrics, MemoryStats};
pub use shard::SmShard;
