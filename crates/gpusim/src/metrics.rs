//! Metrics produced by simulated kernel launches.

use serde::{Deserialize, Serialize};

use crate::cache::CacheStats;

/// Memory-hierarchy counters for one launch (summed over SM shards).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MemoryStats {
    /// L1 counters (all SMs).
    pub l1: CacheStats,
    /// L2 counters (all shards).
    pub l2: CacheStats,
    /// Accesses that went to DRAM.
    pub dram_accesses: u64,
}

impl MemoryStats {
    /// Merge another launch's / shard's counters into this one.
    pub fn merge(&mut self, other: &MemoryStats) {
        self.l1.merge(&other.l1);
        self.l2.merge(&other.l2);
        self.dram_accesses += other.dram_accesses;
    }

    /// L1 hit rate in `[0, 1]`.
    pub fn l1_hit_rate(&self) -> f64 {
        self.l1.hit_rate()
    }

    /// L2 hit rate in `[0, 1]` (of the accesses that missed L1).
    pub fn l2_hit_rate(&self) -> f64 {
        self.l2.hit_rate()
    }
}

/// The result of executing one kernel (an RT launch or an SM compute
/// kernel) on the simulated device.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelMetrics {
    /// Simulated execution time in milliseconds: the busiest SM's cycle
    /// count divided by the clock.
    pub time_ms: f64,
    /// Total cycles accumulated across all SMs (work, not wall time).
    pub total_cycles: f64,
    /// Cycles on the busiest SM (determines `time_ms`).
    pub critical_path_cycles: f64,
    /// Number of warps issued.
    pub warps: u64,
    /// Number of threads / rays issued.
    pub threads: u64,
    /// Cycles charged to RT-core traversal work.
    pub rt_core_cycles: f64,
    /// Cycles charged to SM shader / arithmetic work.
    pub sm_cycles: f64,
    /// Cycles charged to memory stalls (after latency hiding).
    pub mem_stall_cycles: f64,
    /// SIMT efficiency in `[0, 1]`: useful lane work divided by issued warp
    /// work. Reported as the "SM occupancy" analogue of Figure 6.
    pub simt_efficiency: f64,
    /// Memory-hierarchy counters.
    pub memory: MemoryStats,
}

impl KernelMetrics {
    /// Merge metrics of two kernels that execute back-to-back (times add,
    /// counters add, efficiency is re-weighted by warp count).
    pub fn merge_sequential(&mut self, other: &KernelMetrics) {
        let total_warps = self.warps + other.warps;
        if total_warps > 0 {
            self.simt_efficiency = (self.simt_efficiency * self.warps as f64
                + other.simt_efficiency * other.warps as f64)
                / total_warps as f64;
        }
        self.time_ms += other.time_ms;
        self.total_cycles += other.total_cycles;
        self.critical_path_cycles += other.critical_path_cycles;
        self.warps = total_warps;
        self.threads += other.threads;
        self.rt_core_cycles += other.rt_core_cycles;
        self.sm_cycles += other.sm_cycles;
        self.mem_stall_cycles += other.mem_stall_cycles;
        self.memory.merge(&other.memory);
    }
}

/// Accumulates the per-frame costs of a streaming (multi-frame) workload so
/// amortized figures can be reported: structure maintenance (build/refit),
/// kernel work, and the peak frame, per frame and in total.
///
/// This is the counterpart of [`KernelMetrics::merge_sequential`] for
/// workloads where the interesting unit is a *frame* rather than a launch —
/// the `rtnn-dynamic` subsystem records one entry per query round.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FrameAccumulator {
    /// Number of frames recorded.
    pub frames: u64,
    /// Kernel metrics summed over all frames (searches, scheduling, ...).
    pub kernel: KernelMetrics,
    /// Simulated milliseconds spent on acceleration-structure maintenance
    /// (builds + refits) across all frames.
    pub structure_ms: f64,
    /// Simulated end-to-end milliseconds summed over all frames.
    pub total_ms: f64,
    /// The most expensive single frame's end-to-end simulated milliseconds.
    pub peak_frame_ms: f64,
    /// Number of frames that performed a full structure rebuild.
    pub rebuilds: u64,
    /// Number of frames that refitted the structure in place.
    pub refits: u64,
}

impl FrameAccumulator {
    /// Record one frame.
    ///
    /// `kernel` is the frame's merged kernel metrics, `structure_ms` the
    /// simulated build/refit cost it paid, and `frame_total_ms` its
    /// end-to-end simulated time (kernels + structure + transfers).
    pub fn record_frame(&mut self, kernel: &KernelMetrics, structure_ms: f64, frame_total_ms: f64) {
        self.frames += 1;
        self.kernel.merge_sequential(kernel);
        self.structure_ms += structure_ms;
        self.total_ms += frame_total_ms;
        self.peak_frame_ms = self.peak_frame_ms.max(frame_total_ms);
    }

    /// Amortized simulated milliseconds per frame (0 before any frame).
    pub fn amortized_frame_ms(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.total_ms / self.frames as f64
        }
    }

    /// Amortized structure-maintenance milliseconds per frame.
    pub fn amortized_structure_ms(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.structure_ms / self.frames as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_stats_merge_and_rates() {
        let mut m = MemoryStats::default();
        m.l1.accesses = 100;
        m.l1.hits = 80;
        m.l2.accesses = 20;
        m.l2.hits = 10;
        m.dram_accesses = 10;
        let mut n = m;
        n.merge(&m);
        assert_eq!(n.l1.accesses, 200);
        assert_eq!(n.dram_accesses, 20);
        assert!((m.l1_hit_rate() - 0.8).abs() < 1e-9);
        assert!((m.l2_hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn frame_accumulator_amortizes_and_tracks_peaks() {
        let mut acc = FrameAccumulator::default();
        assert_eq!(acc.amortized_frame_ms(), 0.0);
        assert_eq!(acc.amortized_structure_ms(), 0.0);
        let k = KernelMetrics {
            time_ms: 2.0,
            warps: 4,
            ..Default::default()
        };
        acc.record_frame(&k, 0.5, 3.0);
        acc.rebuilds += 1;
        acc.record_frame(&k, 0.1, 9.0);
        acc.refits += 1;
        assert_eq!(acc.frames, 2);
        assert!((acc.total_ms - 12.0).abs() < 1e-12);
        assert!((acc.amortized_frame_ms() - 6.0).abs() < 1e-12);
        assert!((acc.amortized_structure_ms() - 0.3).abs() < 1e-12);
        assert!((acc.peak_frame_ms - 9.0).abs() < 1e-12);
        assert_eq!(acc.kernel.warps, 8);
        assert_eq!(acc.rebuilds + acc.refits, acc.frames);
    }

    #[test]
    fn sequential_merge_adds_time_and_reweights_efficiency() {
        let a = KernelMetrics {
            time_ms: 1.0,
            warps: 10,
            simt_efficiency: 1.0,
            total_cycles: 100.0,
            ..Default::default()
        };
        let b = KernelMetrics {
            time_ms: 3.0,
            warps: 30,
            simt_efficiency: 0.5,
            total_cycles: 300.0,
            ..Default::default()
        };
        let mut m = a.clone();
        m.merge_sequential(&b);
        assert!((m.time_ms - 4.0).abs() < 1e-12);
        assert_eq!(m.warps, 40);
        assert!((m.simt_efficiency - 0.625).abs() < 1e-12);
        assert!((m.total_cycles - 400.0).abs() < 1e-12);
    }
}
