//! Per-SM simulation state.
//!
//! The device splits work into warps and assigns warps round-robin to SM
//! shards. Each shard owns a private L1 and a 1/`num_sms` slice of the L2,
//! which keeps the simulation deterministic even when shards are simulated
//! on different host threads. Warp executors (the OptiX pipeline, the plain
//! SM kernel runner) charge their work to the shard through the methods
//! below; the device then reduces shard cycle counts into a kernel time.

use crate::cache::SetAssociativeCache;
use crate::config::{CostModel, DeviceConfig, IsShaderKind};
use crate::metrics::MemoryStats;

/// Simulation state of one streaming multiprocessor (plus its RT core and
/// its slice of the L2).
#[derive(Debug, Clone)]
pub struct SmShard {
    cost: CostModel,
    l1: SetAssociativeCache,
    l2: SetAssociativeCache,
    cycles: f64,
    rt_core_cycles: f64,
    sm_cycles: f64,
    mem_stall_cycles: f64,
    dram_accesses: u64,
    useful_lane_work: f64,
    issued_warp_work: f64,
    warps_executed: u64,
    /// Scratch buffer for intra-warp coalescing.
    line_scratch: Vec<u64>,
}

impl SmShard {
    /// Create a shard for one SM of `config`.
    pub fn new(config: &DeviceConfig) -> Self {
        let mut l2_cfg = config.l2;
        l2_cfg.capacity_bytes =
            (l2_cfg.capacity_bytes / config.num_sms.max(1)).max(l2_cfg.line_bytes * l2_cfg.ways);
        SmShard {
            cost: config.cost,
            l1: SetAssociativeCache::new(config.l1),
            l2: SetAssociativeCache::new(l2_cfg),
            cycles: 0.0,
            rt_core_cycles: 0.0,
            sm_cycles: 0.0,
            mem_stall_cycles: 0.0,
            dram_accesses: 0,
            useful_lane_work: 0.0,
            issued_warp_work: 0.0,
            warps_executed: 0,
            line_scratch: Vec::with_capacity(64),
        }
    }

    /// The cost model in effect.
    #[inline]
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Mark the start of a warp (bumps the warp counter).
    pub fn begin_warp(&mut self) {
        self.warps_executed += 1;
    }

    /// Charge `units` BVH node tests to the RT core.
    pub fn charge_rt_node_tests(&mut self, units: f64) {
        let c = units * self.cost.node_test_cycles;
        self.rt_core_cycles += c;
        self.cycles += c;
    }

    /// Charge `units` primitive-AABB tests to the RT core.
    pub fn charge_rt_prim_tests(&mut self, units: f64) {
        let c = units * self.cost.prim_test_cycles;
        self.rt_core_cycles += c;
        self.cycles += c;
    }

    /// Charge `count` intersection-shader invocations of `kind` to the SM.
    pub fn charge_is_calls(&mut self, count: f64, kind: IsShaderKind) {
        let c = count * self.cost.is_call_cycles(kind);
        self.sm_cycles += c;
        self.cycles += c;
    }

    /// Charge `count` generic SM operations (used by baseline kernels).
    pub fn charge_sm_ops(&mut self, count: f64) {
        let c = count * self.cost.sm_op_cycles;
        self.sm_cycles += c;
        self.cycles += c;
    }

    /// Charge raw SM cycles (for shader bodies whose cost the caller already
    /// expressed in cycles).
    pub fn charge_sm_cycles(&mut self, cycles: f64) {
        self.sm_cycles += cycles;
        self.cycles += cycles;
    }

    /// Issue one warp-level memory transaction for every distinct cache line
    /// touched by `addresses` (intra-warp coalescing), probe the cache
    /// hierarchy and charge the resulting stall cycles.
    pub fn access_warp_memory(&mut self, addresses: &[u64]) {
        if addresses.is_empty() {
            return;
        }
        // Coalesce: one transaction per distinct line.
        self.line_scratch.clear();
        for &a in addresses {
            self.line_scratch.push(self.l1.line_of(a));
        }
        self.line_scratch.sort_unstable();
        self.line_scratch.dedup();

        let mut stall = 0.0;
        let line_bytes = self.l1.config().line_bytes as u64;
        // Iterate lines; borrow rules: compute addresses first.
        let lines = std::mem::take(&mut self.line_scratch);
        for &line in &lines {
            let addr = line * line_bytes;
            if self.l1.access(addr) {
                stall += self.cost.l1_hit_cycles;
            } else if self.l2.access(addr) {
                stall += self.cost.l2_hit_cycles;
            } else {
                self.dram_accesses += 1;
                stall += self.cost.dram_cycles;
            }
        }
        self.line_scratch = lines;
        let visible = stall * (1.0 - self.cost.latency_hiding);
        self.mem_stall_cycles += visible;
        self.cycles += visible;
    }

    /// Record SIMT efficiency inputs for one warp: `useful` is the sum of
    /// per-lane work items, `issued` is the work the warp actually had to
    /// issue in lockstep (≥ `useful / warp_size`). Both in arbitrary but
    /// consistent units.
    pub fn note_simt_work(&mut self, useful: f64, issued: f64) {
        self.useful_lane_work += useful;
        self.issued_warp_work += issued;
    }

    /// Total cycles accumulated on this shard.
    #[inline]
    pub fn cycles(&self) -> f64 {
        self.cycles
    }

    /// Number of warps executed on this shard.
    #[inline]
    pub fn warps_executed(&self) -> u64 {
        self.warps_executed
    }

    /// Breakdown `(rt_core, sm, mem_stall)` cycles.
    pub fn cycle_breakdown(&self) -> (f64, f64, f64) {
        (self.rt_core_cycles, self.sm_cycles, self.mem_stall_cycles)
    }

    /// SIMT efficiency inputs `(useful, issued)`.
    pub fn simt_work(&self) -> (f64, f64) {
        (self.useful_lane_work, self.issued_warp_work)
    }

    /// Memory counters for this shard.
    pub fn memory_stats(&self) -> MemoryStats {
        MemoryStats {
            l1: self.l1.stats(),
            l2: self.l2.stats(),
            dram_accesses: self.dram_accesses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;

    fn shard() -> SmShard {
        SmShard::new(&DeviceConfig::tiny_test_device())
    }

    #[test]
    fn charges_accumulate_cycles() {
        let mut s = shard();
        assert_eq!(s.cycles(), 0.0);
        s.charge_rt_node_tests(10.0);
        s.charge_is_calls(2.0, IsShaderKind::Knn);
        s.charge_sm_ops(5.0);
        let (rt, sm, mem) = s.cycle_breakdown();
        assert!(rt > 0.0 && sm > 0.0);
        assert_eq!(mem, 0.0);
        assert!((s.cycles() - (rt + sm)).abs() < 1e-9);
        // KNN IS calls are the most expensive item charged here.
        assert!(sm > rt);
    }

    #[test]
    fn coalescing_counts_one_access_per_line() {
        let mut s = shard();
        // 32 addresses inside a single 64-byte line: one L1 access.
        let addrs: Vec<u64> = (0..32u64).map(|i| 1024 + i).collect();
        s.access_warp_memory(&addrs);
        assert_eq!(s.memory_stats().l1.accesses, 1);
        // 32 addresses on 32 different lines: 32 accesses.
        let spread: Vec<u64> = (0..32u64).map(|i| 100_000 + i * 64).collect();
        s.access_warp_memory(&spread);
        assert_eq!(s.memory_stats().l1.accesses, 33);
    }

    #[test]
    fn repeated_warp_accesses_hit_in_l1() {
        let mut s = shard();
        let addrs: Vec<u64> = (0..4u64).map(|i| i * 64).collect();
        s.access_warp_memory(&addrs);
        let cold_cycles = s.cycles();
        s.access_warp_memory(&addrs);
        let warm_cycles = s.cycles() - cold_cycles;
        assert!(
            warm_cycles < cold_cycles,
            "warm {warm_cycles} vs cold {cold_cycles}"
        );
        assert!(s.memory_stats().l1.hits >= 4);
    }

    #[test]
    fn dram_accesses_are_counted() {
        let mut s = shard();
        // Stream far more distinct lines than L1+L2 shard capacity.
        for i in 0..2000u64 {
            s.access_warp_memory(&[i * 64]);
        }
        let m = s.memory_stats();
        assert!(m.dram_accesses > 0);
        assert!(s.cycle_breakdown().2 > 0.0);
    }

    #[test]
    fn empty_memory_access_is_free() {
        let mut s = shard();
        s.access_warp_memory(&[]);
        assert_eq!(s.cycles(), 0.0);
        assert_eq!(s.memory_stats().l1.accesses, 0);
    }

    #[test]
    fn simt_bookkeeping() {
        let mut s = shard();
        s.begin_warp();
        s.note_simt_work(32.0, 32.0);
        s.begin_warp();
        s.note_simt_work(8.0, 32.0);
        assert_eq!(s.warps_executed(), 2);
        let (useful, issued) = s.simt_work();
        assert_eq!(useful, 40.0);
        assert_eq!(issued, 64.0);
    }
}
