//! Axis-aligned bounding boxes with OptiX ray-intersection semantics.
//!
//! The paper (Section 2.2, "Intersection Conditions") defines two conditions
//! under which a ray hits an AABB:
//!
//! 1. the slab-test hit parameter `t` falls inside `[t_min, t_max]`, or
//! 2. the ray *origin* lies inside the AABB, even if the slab intersection
//!    parameters fall outside the segment.
//!
//! RTNN's short rays rely on Condition 2 almost exclusively; the traversal
//! code in `rtnn-bvh` calls [`Aabb::intersects_ray`], which implements both.

use crate::{Ray, Vec3};
use serde::{Deserialize, Serialize};

/// An axis-aligned box `[min, max]` (inclusive bounds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    pub min: Vec3,
    pub max: Vec3,
}

impl Default for Aabb {
    /// The default box is [`Aabb::EMPTY`].
    fn default() -> Self {
        Aabb::EMPTY
    }
}

impl Aabb {
    /// The canonical "empty" box: min = +inf, max = -inf. Growing it with any
    /// point produces a box containing exactly that point.
    pub const EMPTY: Aabb = Aabb {
        min: Vec3 {
            x: f32::INFINITY,
            y: f32::INFINITY,
            z: f32::INFINITY,
        },
        max: Vec3 {
            x: f32::NEG_INFINITY,
            y: f32::NEG_INFINITY,
            z: f32::NEG_INFINITY,
        },
    };

    /// Construct from explicit bounds. `min` must be component-wise ≤ `max`
    /// for a non-empty box; this is not checked here (the BVH validator
    /// checks it for constructed hierarchies).
    #[inline]
    pub const fn new(min: Vec3, max: Vec3) -> Self {
        Aabb { min, max }
    }

    /// The cube of width `width` centred at `center`. This is how RTNN turns
    /// a search point into a primitive: `center = point, width = 2 * radius`
    /// (Listing 1, line 5).
    #[inline]
    pub fn cube(center: Vec3, width: f32) -> Self {
        let half = Vec3::splat(width * 0.5);
        Aabb {
            min: center - half,
            max: center + half,
        }
    }

    /// The tightest AABB circumscribing the sphere `(center, radius)`.
    #[inline]
    pub fn around_sphere(center: Vec3, radius: f32) -> Self {
        Aabb::cube(center, 2.0 * radius)
    }

    /// The bounding box of a set of points. Returns [`Aabb::EMPTY`] for an
    /// empty slice.
    pub fn from_points(points: &[Vec3]) -> Self {
        let mut b = Aabb::EMPTY;
        for &p in points {
            b.grow_point(p);
        }
        b
    }

    /// True if the box contains no volume (never grown).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z
    }

    /// Box centre.
    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Edge lengths.
    #[inline]
    pub fn extent(&self) -> Vec3 {
        self.max - self.min
    }

    /// Volume (zero for empty or degenerate boxes).
    #[inline]
    pub fn volume(&self) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        let e = self.extent();
        e.x * e.y * e.z
    }

    /// Surface area; used by the SAH BVH builder.
    #[inline]
    pub fn surface_area(&self) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        let e = self.extent();
        2.0 * (e.x * e.y + e.y * e.z + e.z * e.x)
    }

    /// Longest edge length.
    #[inline]
    pub fn longest_extent(&self) -> f32 {
        self.extent().max_component()
    }

    /// Index (0=x, 1=y, 2=z) of the longest axis.
    #[inline]
    pub fn longest_axis(&self) -> usize {
        let e = self.extent();
        if e.x >= e.y && e.x >= e.z {
            0
        } else if e.y >= e.z {
            1
        } else {
            2
        }
    }

    /// Grow to include a point.
    #[inline]
    pub fn grow_point(&mut self, p: Vec3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Grow to include another box.
    #[inline]
    pub fn grow_aabb(&mut self, other: &Aabb) {
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Union of two boxes.
    #[inline]
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Expand symmetrically by `margin` on every face.
    #[inline]
    pub fn expanded(&self, margin: f32) -> Aabb {
        Aabb {
            min: self.min - Vec3::splat(margin),
            max: self.max + Vec3::splat(margin),
        }
    }

    /// Point-in-box test (inclusive bounds). This is the geometric meaning of
    /// the paper's Condition 2, and the predicate Step 1 of the RTNN search
    /// reduces to for short rays.
    #[inline]
    pub fn contains_point(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// True if the other box is fully inside this one (inclusive).
    #[inline]
    pub fn contains_aabb(&self, other: &Aabb) -> bool {
        self.contains_point(other.min) && self.contains_point(other.max)
    }

    /// Box-box overlap test (inclusive).
    #[inline]
    pub fn overlaps(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
            && self.min.z <= other.max.z
            && self.max.z >= other.min.z
    }

    /// Squared distance from a point to the box (zero if inside).
    #[inline]
    pub fn distance_squared_to_point(&self, p: Vec3) -> f32 {
        let clamped = p.max(self.min).min(self.max);
        clamped.distance_squared(p)
    }

    /// The slab test: returns `Some((t_enter, t_exit))` for the parametric
    /// interval over which the *infinite* line enters and exits the box, or
    /// `None` if the line misses it entirely. Zero direction components are
    /// handled by the usual IEEE infinity trick.
    #[inline]
    pub fn slab_intersection(&self, ray: &Ray) -> Option<(f32, f32)> {
        let inv = Vec3::new(
            1.0 / ray.direction.x,
            1.0 / ray.direction.y,
            1.0 / ray.direction.z,
        );
        let t0 = (self.min - ray.origin) * inv;
        let t1 = (self.max - ray.origin) * inv;
        let t_near = t0.min(t1);
        let t_far = t0.max(t1);
        let t_enter = t_near.max_component();
        let t_exit = t_far.min_component();
        if t_enter <= t_exit {
            Some((t_enter, t_exit))
        } else {
            None
        }
    }

    /// OptiX-style ray–AABB intersection implementing both conditions of
    /// Section 2.2:
    ///
    /// * Condition 1: the slab hit interval intersects `[t_min, t_max]`;
    /// * Condition 2: the ray origin is inside the box (reported as a hit
    ///   even when the slab parameters fall outside the segment).
    #[inline]
    pub fn intersects_ray(&self, ray: &Ray) -> bool {
        if self.contains_point(ray.origin) {
            return true; // Condition 2
        }
        match self.slab_intersection(ray) {
            Some((t_enter, t_exit)) => t_enter <= ray.t_max && t_exit >= ray.t_min,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_construction() {
        let b = Aabb::cube(Vec3::new(1.0, 2.0, 3.0), 2.0);
        assert_eq!(b.min, Vec3::new(0.0, 1.0, 2.0));
        assert_eq!(b.max, Vec3::new(2.0, 3.0, 4.0));
        assert_eq!(b.center(), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(b.extent(), Vec3::splat(2.0));
        assert_eq!(b.volume(), 8.0);
        assert_eq!(b.surface_area(), 24.0);
        // Listing 1 semantics: AABB circumscribing the r-sphere has width 2r.
        assert_eq!(
            Aabb::around_sphere(Vec3::ZERO, 0.5),
            Aabb::cube(Vec3::ZERO, 1.0)
        );
    }

    #[test]
    fn empty_box_behaviour() {
        let e = Aabb::EMPTY;
        assert!(e.is_empty());
        assert_eq!(e.volume(), 0.0);
        assert_eq!(e.surface_area(), 0.0);
        assert!(!e.contains_point(Vec3::ZERO));
        let mut g = e;
        g.grow_point(Vec3::new(1.0, 1.0, 1.0));
        assert!(!g.is_empty());
        assert_eq!(g.min, g.max);
    }

    #[test]
    fn from_points_bounds_everything() {
        let pts = [
            Vec3::new(-1.0, 0.0, 2.0),
            Vec3::new(3.0, -4.0, 1.0),
            Vec3::new(0.5, 2.0, -3.0),
        ];
        let b = Aabb::from_points(&pts);
        for p in pts {
            assert!(b.contains_point(p));
        }
        assert_eq!(b.min, Vec3::new(-1.0, -4.0, -3.0));
        assert_eq!(b.max, Vec3::new(3.0, 2.0, 2.0));
        assert!(Aabb::from_points(&[]).is_empty());
    }

    #[test]
    fn containment_and_overlap() {
        let big = Aabb::cube(Vec3::ZERO, 4.0);
        let small = Aabb::cube(Vec3::new(0.5, 0.5, 0.5), 1.0);
        let apart = Aabb::cube(Vec3::new(10.0, 0.0, 0.0), 1.0);
        assert!(big.contains_aabb(&small));
        assert!(!small.contains_aabb(&big));
        assert!(big.overlaps(&small));
        assert!(small.overlaps(&big));
        assert!(!big.overlaps(&apart));
        assert_eq!(big.union(&apart).max.x, 10.5);
    }

    #[test]
    fn longest_axis_selection() {
        assert_eq!(
            Aabb::new(Vec3::ZERO, Vec3::new(3.0, 1.0, 2.0)).longest_axis(),
            0
        );
        assert_eq!(
            Aabb::new(Vec3::ZERO, Vec3::new(1.0, 3.0, 2.0)).longest_axis(),
            1
        );
        assert_eq!(
            Aabb::new(Vec3::ZERO, Vec3::new(1.0, 2.0, 3.0)).longest_axis(),
            2
        );
    }

    #[test]
    fn distance_to_point() {
        let b = Aabb::cube(Vec3::ZERO, 2.0); // [-1,1]^3
        assert_eq!(b.distance_squared_to_point(Vec3::ZERO), 0.0);
        assert_eq!(b.distance_squared_to_point(Vec3::new(2.0, 0.0, 0.0)), 1.0);
        assert_eq!(b.distance_squared_to_point(Vec3::new(2.0, 2.0, 0.0)), 2.0);
    }

    #[test]
    fn condition1_long_ray_hits_box_ahead() {
        let b = Aabb::cube(Vec3::new(5.0, 0.0, 0.0), 2.0);
        let hit = Ray::new(Vec3::ZERO, Vec3::UNIT_X, 0.0, 100.0);
        let too_short = Ray::new(Vec3::ZERO, Vec3::UNIT_X, 0.0, 1.0);
        let behind = Ray::new(Vec3::ZERO, -Vec3::UNIT_X, 0.0, 100.0);
        assert!(b.intersects_ray(&hit));
        assert!(!b.intersects_ray(&too_short));
        assert!(!b.intersects_ray(&behind));
    }

    #[test]
    fn condition2_origin_inside_overrides_segment() {
        // The origin is inside the box but the short segment never reaches
        // the box faces: the paper still counts this as an intersection.
        let b = Aabb::cube(Vec3::ZERO, 2.0);
        let probe = Ray::point_probe(Vec3::new(0.25, -0.25, 0.1));
        assert!(b.intersects_ray(&probe));
        // And the same probe outside the box misses.
        let outside = Ray::point_probe(Vec3::new(5.0, 0.0, 0.0));
        assert!(!b.intersects_ray(&outside));
    }

    #[test]
    fn short_ray_equivalence_with_point_membership() {
        // For point-probe rays, intersects_ray must agree exactly with
        // contains_point — this equivalence is what makes the RTNN mapping
        // a neighbor search rather than a rendering pass.
        let b = Aabb::new(Vec3::new(-0.3, 0.1, -2.0), Vec3::new(1.7, 2.2, -0.5));
        let samples = [
            Vec3::new(0.0, 1.0, -1.0),
            Vec3::new(-0.31, 1.0, -1.0),
            Vec3::new(1.7, 2.2, -0.5),
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(0.5, 0.2, -1.9),
        ];
        for q in samples {
            assert_eq!(
                b.intersects_ray(&Ray::point_probe(q)),
                b.contains_point(q),
                "query {q:?}"
            );
        }
    }

    #[test]
    fn slab_interval_is_ordered() {
        let b = Aabb::cube(Vec3::new(3.0, 0.0, 0.0), 2.0);
        let r = Ray::unbounded(Vec3::ZERO, Vec3::UNIT_X);
        let (t0, t1) = b.slab_intersection(&r).unwrap();
        assert!(t0 <= t1);
        assert!((t0 - 2.0).abs() < 1e-6);
        assert!((t1 - 4.0).abs() < 1e-6);
        // Ray parallel to a slab and outside it misses.
        let miss = Ray::unbounded(Vec3::new(0.0, 10.0, 0.0), Vec3::UNIT_X);
        assert!(b.slab_intersection(&miss).is_none());
    }

    #[test]
    fn false_positive_scenario_from_figure_4c() {
        // A long ray from a far-away query still intersects the AABB even
        // though the query is not inside the sphere — the motivation for
        // short rays in Section 3.1.
        let point = Vec3::new(0.0, 0.0, 0.0);
        let r = 1.0;
        let aabb = Aabb::around_sphere(point, r);
        let far_query = Vec3::new(-5.0, 0.9, 0.9); // outside the sphere
        let long_ray = Ray::new(far_query, Vec3::UNIT_X, 0.0, 100.0);
        let short_ray = Ray::point_probe(far_query);
        assert!(aabb.intersects_ray(&long_ray)); // false positive for step 1
        assert!(!aabb.intersects_ray(&short_ray)); // short ray avoids it
        assert!(far_query.distance_squared(point) > r * r);
    }
}
