//! Uniform grids over a 3D scene.
//!
//! Two consumers, mirroring the paper:
//!
//! * the query-partitioning optimisation (Section 5.1) lays a uniform grid
//!   over the search points and grows a *megacell* around each query, and
//! * the grid-based baselines (cuNSearch-like fixed-radius search and
//!   FRNN-like KNN) bin points into cells and scan neighbouring cells.
//!
//! [`UniformGrid`] is pure geometry (point ↔ cell mapping); [`PointBins`]
//! adds a counting-sort of point ids by cell, the layout GPU implementations
//! use and the one our simulated kernels charge memory accesses against.

use crate::{Aabb, Vec3};

/// Integer coordinates of a grid cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridCoord {
    pub x: u32,
    pub y: u32,
    pub z: u32,
}

impl GridCoord {
    /// Construct a coordinate triple.
    #[inline]
    pub const fn new(x: u32, y: u32, z: u32) -> Self {
        GridCoord { x, y, z }
    }
}

/// A uniform grid covering an AABB with cubical cells.
#[derive(Debug, Clone)]
pub struct UniformGrid {
    bounds: Aabb,
    cell_size: f32,
    dims: [u32; 3],
}

impl UniformGrid {
    /// Build a grid over `bounds` with the given `cell_size`. The bounds are
    /// expanded by a small epsilon so points exactly on the max face still
    /// map to a valid cell. Panics if `cell_size` is not strictly positive or
    /// `bounds` is empty.
    pub fn new(bounds: Aabb, cell_size: f32) -> Self {
        assert!(
            cell_size > 0.0,
            "cell_size must be positive, got {cell_size}"
        );
        assert!(!bounds.is_empty(), "cannot build a grid over an empty AABB");
        let ext = bounds.extent();
        let dim = |e: f32| ((e / cell_size).ceil() as u32).max(1);
        UniformGrid {
            bounds,
            cell_size,
            dims: [dim(ext.x), dim(ext.y), dim(ext.z)],
        }
    }

    /// Build a grid with at most `max_cells` total cells by choosing the cell
    /// size accordingly (the paper uses "the smallest cell size allowed by
    /// the GPU memory capacity"; `max_cells` plays the role of that memory
    /// cap).
    pub fn with_max_cells(bounds: Aabb, max_cells: usize) -> Self {
        assert!(max_cells >= 1);
        assert!(!bounds.is_empty(), "cannot build a grid over an empty AABB");
        let ext = bounds.extent();
        // Degenerate axes contribute a single cell; distribute resolution over
        // the remaining ones.
        let volume: f64 = [ext.x, ext.y, ext.z]
            .iter()
            .map(|&e| if e > 0.0 { e as f64 } else { 1.0 })
            .product();
        let live_axes = [ext.x, ext.y, ext.z]
            .iter()
            .filter(|&&e| e > 0.0)
            .count()
            .max(1);
        let cell = (volume / max_cells as f64).powf(1.0 / live_axes as f64) as f32;
        let cell = cell.max(ext.max_component() * 1e-6).max(f32::MIN_POSITIVE);
        let mut grid = UniformGrid::new(bounds, cell);
        // Rounding of `ceil` can overshoot max_cells slightly; grow the cell
        // until the budget is respected.
        while grid.num_cells() > max_cells {
            grid = UniformGrid::new(bounds, grid.cell_size * 1.1);
        }
        grid
    }

    /// The grid's bounding box.
    #[inline]
    pub fn bounds(&self) -> &Aabb {
        &self.bounds
    }

    /// Edge length of a cell.
    #[inline]
    pub fn cell_size(&self) -> f32 {
        self.cell_size
    }

    /// Number of cells along each axis.
    #[inline]
    pub fn dims(&self) -> [u32; 3] {
        self.dims
    }

    /// Total number of cells.
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.dims[0] as usize * self.dims[1] as usize * self.dims[2] as usize
    }

    /// Cell containing `p`, clamped to the grid.
    #[inline]
    pub fn cell_of(&self, p: Vec3) -> GridCoord {
        let rel = (p - self.bounds.min) / self.cell_size;
        let clamp = |v: f32, d: u32| (v.floor().max(0.0) as u32).min(d - 1);
        GridCoord {
            x: clamp(rel.x, self.dims[0]),
            y: clamp(rel.y, self.dims[1]),
            z: clamp(rel.z, self.dims[2]),
        }
    }

    /// Linear index of a cell (x fastest, z slowest) — the "raster-scan
    /// order" used in the Figure 5 experiment.
    #[inline]
    pub fn cell_index(&self, c: GridCoord) -> usize {
        (c.z as usize * self.dims[1] as usize + c.y as usize) * self.dims[0] as usize + c.x as usize
    }

    /// Inverse of [`Self::cell_index`].
    #[inline]
    pub fn coord_of_index(&self, idx: usize) -> GridCoord {
        let nx = self.dims[0] as usize;
        let ny = self.dims[1] as usize;
        GridCoord {
            x: (idx % nx) as u32,
            y: ((idx / nx) % ny) as u32,
            z: (idx / (nx * ny)) as u32,
        }
    }

    /// Geometric bounds of a cell.
    #[inline]
    pub fn cell_bounds(&self, c: GridCoord) -> Aabb {
        let min = self.bounds.min
            + Vec3::new(
                c.x as f32 * self.cell_size,
                c.y as f32 * self.cell_size,
                c.z as f32 * self.cell_size,
            );
        Aabb::new(min, min + Vec3::splat(self.cell_size))
    }

    /// Centre of a cell.
    #[inline]
    pub fn cell_center(&self, c: GridCoord) -> Vec3 {
        self.cell_bounds(c).center()
    }

    /// The inclusive cell-coordinate range overlapped by `aabb`, clamped to
    /// the grid. Used to enumerate candidate cells for range queries.
    pub fn cell_range(&self, aabb: &Aabb) -> (GridCoord, GridCoord) {
        (self.cell_of(aabb.min), self.cell_of(aabb.max))
    }

    /// Iterate all cell coordinates in the inclusive range `[lo, hi]` in
    /// raster order.
    pub fn iter_range(&self, lo: GridCoord, hi: GridCoord) -> impl Iterator<Item = GridCoord> {
        let (lx, hx) = (lo.x, hi.x);
        let (ly, hy) = (lo.y, hi.y);
        let (lz, hz) = (lo.z, hi.z);
        (lz..=hz).flat_map(move |z| {
            (ly..=hy).flat_map(move |y| (lx..=hx).map(move |x| GridCoord { x, y, z }))
        })
    }
}

/// Points binned into the cells of a [`UniformGrid`] by counting sort.
///
/// `cell_start[i]..cell_start[i+1]` indexes `point_ids` for cell `i`; this is
/// the standard GPU layout (cuNSearch, FRNN) and the one the simulated
/// kernels charge memory traffic against.
#[derive(Debug, Clone)]
pub struct PointBins {
    grid: UniformGrid,
    cell_start: Vec<u32>,
    point_ids: Vec<u32>,
}

impl PointBins {
    /// Bin `points` into `grid` cells.
    pub fn build(grid: UniformGrid, points: &[Vec3]) -> Self {
        let cells: Vec<u32> = points
            .iter()
            .map(|&p| grid.cell_index(grid.cell_of(p)) as u32)
            .collect();
        PointBins::from_cell_indices(grid, &cells)
    }

    /// Bin points whose cell indices are already known (point `i` lives in
    /// cell `cells[i]`). This is the incremental-maintenance entry point:
    /// a caller that tracks per-point cells across frames only recomputes
    /// the cells of points that moved and re-runs the (cheap, linear)
    /// counting sort — skipping the per-point `cell_of` geometry pass and
    /// any re-derivation of the grid itself. Panics if a cell index is out
    /// of range.
    pub fn from_cell_indices(grid: UniformGrid, cells: &[u32]) -> Self {
        let n_cells = grid.num_cells();
        let mut counts = vec![0u32; n_cells + 1];
        for &c in cells {
            assert!((c as usize) < n_cells, "cell index {c} out of range");
            counts[c as usize + 1] += 1;
        }
        for i in 0..n_cells {
            counts[i + 1] += counts[i];
        }
        let cell_start = counts;
        let mut cursor = cell_start.clone();
        let mut point_ids = vec![0u32; cells.len()];
        for (i, &c) in cells.iter().enumerate() {
            point_ids[cursor[c as usize] as usize] = i as u32;
            cursor[c as usize] += 1;
        }
        PointBins {
            grid,
            cell_start,
            point_ids,
        }
    }

    /// The underlying grid.
    #[inline]
    pub fn grid(&self) -> &UniformGrid {
        &self.grid
    }

    /// Point ids stored in `cell`.
    #[inline]
    pub fn cell_points(&self, cell: GridCoord) -> &[u32] {
        let idx = self.grid.cell_index(cell);
        let start = self.cell_start[idx] as usize;
        let end = self.cell_start[idx + 1] as usize;
        &self.point_ids[start..end]
    }

    /// Number of points in `cell`.
    #[inline]
    pub fn cell_count(&self, cell: GridCoord) -> u32 {
        let idx = self.grid.cell_index(cell);
        self.cell_start[idx + 1] - self.cell_start[idx]
    }

    /// Number of points in the inclusive cell-coordinate box `[lo, hi]`.
    ///
    /// Cells are linearised x-fastest, so an x-run at fixed `(y, z)` is a
    /// contiguous index range and its population is one prefix-sum
    /// subtraction — the box costs one subtraction per row, not per cell
    /// (the megacell growth loop calls this with boxes of up to the whole
    /// grid).
    pub fn count_in_cell_box(&self, lo: GridCoord, hi: GridCoord) -> u32 {
        let mut total = 0;
        for z in lo.z..=hi.z {
            for y in lo.y..=hi.y {
                let row_lo = self.grid.cell_index(GridCoord { x: lo.x, y, z });
                let row_hi = self.grid.cell_index(GridCoord { x: hi.x, y, z });
                total += self.cell_start[row_hi + 1] - self.cell_start[row_lo];
            }
        }
        total
    }

    /// Total number of binned points.
    #[inline]
    pub fn len(&self) -> usize {
        self.point_ids.len()
    }

    /// True if no points were binned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.point_ids.is_empty()
    }

    /// All point ids, grouped by cell (raster cell order). Useful for
    /// generating spatially coherent orderings.
    #[inline]
    pub fn ids_in_cell_order(&self) -> &[u32] {
        &self.point_ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_grid(cells_per_axis: u32) -> UniformGrid {
        UniformGrid::new(
            Aabb::new(Vec3::ZERO, Vec3::splat(cells_per_axis as f32)),
            1.0,
        )
    }

    #[test]
    fn dimensions_and_counts() {
        let g = unit_grid(4);
        assert_eq!(g.dims(), [4, 4, 4]);
        assert_eq!(g.num_cells(), 64);
        assert_eq!(g.cell_size(), 1.0);
        let g2 = UniformGrid::new(Aabb::new(Vec3::ZERO, Vec3::new(2.5, 1.0, 0.9)), 1.0);
        assert_eq!(g2.dims(), [3, 1, 1]);
    }

    #[test]
    fn point_to_cell_mapping_and_clamping() {
        let g = unit_grid(4);
        assert_eq!(g.cell_of(Vec3::new(0.5, 0.5, 0.5)), GridCoord::new(0, 0, 0));
        assert_eq!(g.cell_of(Vec3::new(3.9, 0.1, 2.2)), GridCoord::new(3, 0, 2));
        // Points on / beyond the max face clamp into the last cell.
        assert_eq!(g.cell_of(Vec3::new(4.0, 4.0, 4.0)), GridCoord::new(3, 3, 3));
        assert_eq!(
            g.cell_of(Vec3::new(-1.0, 5.0, 2.0)),
            GridCoord::new(0, 3, 2)
        );
    }

    #[test]
    fn index_round_trip() {
        let g = unit_grid(3);
        for idx in 0..g.num_cells() {
            let c = g.coord_of_index(idx);
            assert_eq!(g.cell_index(c), idx);
        }
    }

    #[test]
    fn cell_bounds_partition_the_domain() {
        let g = unit_grid(2);
        let b = g.cell_bounds(GridCoord::new(1, 0, 1));
        assert_eq!(b.min, Vec3::new(1.0, 0.0, 1.0));
        assert_eq!(b.max, Vec3::new(2.0, 1.0, 2.0));
        assert_eq!(g.cell_center(GridCoord::new(0, 0, 0)), Vec3::splat(0.5));
    }

    #[test]
    fn max_cells_budget_is_respected() {
        let bounds = Aabb::new(Vec3::ZERO, Vec3::new(10.0, 20.0, 5.0));
        for budget in [1usize, 64, 1000, 8192] {
            let g = UniformGrid::with_max_cells(bounds, budget);
            assert!(
                g.num_cells() <= budget,
                "budget {budget} -> {}",
                g.num_cells()
            );
        }
        // Planar bounds (degenerate z) still work.
        let planar = Aabb::new(Vec3::ZERO, Vec3::new(10.0, 10.0, 0.0));
        let g = UniformGrid::with_max_cells(planar, 256);
        assert!(g.num_cells() <= 256);
        assert_eq!(g.dims()[2], 1);
    }

    #[test]
    fn range_iteration_is_exhaustive() {
        let g = unit_grid(4);
        let cells: Vec<_> = g
            .iter_range(GridCoord::new(1, 1, 1), GridCoord::new(2, 3, 1))
            .collect();
        assert_eq!(cells.len(), 2 * 3); // 2 × 3 × 1 cells
        assert!(cells.contains(&GridCoord::new(2, 3, 1)));
        let (lo, hi) = g.cell_range(&Aabb::new(Vec3::splat(0.5), Vec3::splat(2.5)));
        assert_eq!(lo, GridCoord::new(0, 0, 0));
        assert_eq!(hi, GridCoord::new(2, 2, 2));
    }

    #[test]
    fn bins_preserve_every_point_exactly_once() {
        let g = unit_grid(4);
        let pts: Vec<Vec3> = (0..100)
            .map(|i| {
                let f = i as f32;
                Vec3::new((f * 0.37) % 4.0, (f * 0.61) % 4.0, (f * 0.13) % 4.0)
            })
            .collect();
        let bins = PointBins::build(g, &pts);
        assert_eq!(bins.len(), pts.len());
        let mut seen = vec![false; pts.len()];
        for idx in 0..bins.grid().num_cells() {
            let c = bins.grid().coord_of_index(idx);
            for &pid in bins.cell_points(c) {
                assert!(!seen[pid as usize], "point {pid} binned twice");
                seen[pid as usize] = true;
                // The point really is inside the cell it was binned into.
                assert!(bins
                    .grid()
                    .cell_bounds(c)
                    .expanded(1e-5)
                    .contains_point(pts[pid as usize]));
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn from_cell_indices_matches_build() {
        let g = unit_grid(3);
        let pts: Vec<Vec3> = (0..50)
            .map(|i| {
                let f = i as f32;
                Vec3::new((f * 0.31) % 3.0, (f * 0.47) % 3.0, (f * 0.11) % 3.0)
            })
            .collect();
        let built = PointBins::build(g.clone(), &pts);
        let cells: Vec<u32> = pts
            .iter()
            .map(|&p| g.cell_index(g.cell_of(p)) as u32)
            .collect();
        let from_cells = PointBins::from_cell_indices(g, &cells);
        assert_eq!(built.cell_start, from_cells.cell_start);
        assert_eq!(built.point_ids, from_cells.point_ids);
    }

    #[test]
    fn counting_in_cell_boxes() {
        let g = unit_grid(2);
        let pts = vec![
            Vec3::splat(0.5),         // cell (0,0,0)
            Vec3::new(1.5, 0.5, 0.5), // cell (1,0,0)
            Vec3::new(1.5, 1.5, 0.5), // cell (1,1,0)
            Vec3::new(1.5, 1.5, 1.5), // cell (1,1,1)
        ];
        let bins = PointBins::build(g, &pts);
        assert_eq!(bins.cell_count(GridCoord::new(0, 0, 0)), 1);
        assert_eq!(
            bins.count_in_cell_box(GridCoord::new(0, 0, 0), GridCoord::new(1, 1, 1)),
            4
        );
        assert_eq!(
            bins.count_in_cell_box(GridCoord::new(1, 0, 0), GridCoord::new(1, 1, 0)),
            2
        );
        assert!(!bins.is_empty());
    }

    #[test]
    #[should_panic]
    fn zero_cell_size_panics() {
        let _ = UniformGrid::new(Aabb::new(Vec3::ZERO, Vec3::ONE), 0.0);
    }
}
