//! # rtnn-math
//!
//! Geometry substrate shared by every crate in the RTNN reproduction.
//!
//! The paper formulates neighbor search in low-dimensional (≤3D) Euclidean
//! space; everything here is specialised for that: a small `f32` 3-vector,
//! axis-aligned bounding boxes with the OptiX ray–AABB intersection
//! semantics (Section 2.2 of the paper, "Intersection Conditions"), spheres,
//! rays parameterised by `[t_min, t_max]`, 30-bit-per-axis Morton codes used
//! both by the LBVH builder and by the query-scheduling optimisation
//! (Section 4), and a uniform grid used by the megacell computation
//! (Section 5.1) and by the grid-based baselines.
//!
//! The crate is dependency-free (except `serde` for result serialisation in
//! the bench harness) and deterministic: no global state, no platform
//! intrinsics.

pub mod aabb;
pub mod grid;
pub mod morton;
pub mod ray;
pub mod sphere;
pub mod vec3;

pub use aabb::Aabb;
pub use grid::{GridCoord, PointBins, UniformGrid};
pub use morton::{morton3d, morton3d_u64, MortonKey};
pub use ray::Ray;
pub use sphere::Sphere;
pub use vec3::Vec3;

/// Convenience alias used across the workspace for point/primitive indices.
///
/// `u32` keeps hot arrays (BVH leaves, neighbor lists, permutations) compact;
/// the paper's largest input (KITTI-25M) fits comfortably.
pub type PointId = u32;
