//! Morton (Z-order) codes.
//!
//! Used in two places, matching the paper:
//!
//! * the LBVH builder in `rtnn-bvh` sorts primitive centroids by Morton code
//!   before emitting the hierarchy, and
//! * query scheduling (Section 4) sorts queries by the Morton code of their
//!   first-hit AABB centre so that adjacent rays are spatially close.
//!
//! Codes interleave 10 bits per axis (30-bit [`morton3d`]) or 21 bits per
//! axis (63-bit [`morton3d_u64`]); the 63-bit variant is the default key so
//! multi-million-point clouds do not alias.

use crate::{Aabb, Vec3};

/// The key type produced by [`MortonEncoder::encode`].
pub type MortonKey = u64;

/// Expand a 10-bit integer so its bits occupy every third position.
#[inline]
fn expand_bits_10(v: u32) -> u32 {
    let mut v = v & 0x3ff;
    v = (v | (v << 16)) & 0x030000ff;
    v = (v | (v << 8)) & 0x0300f00f;
    v = (v | (v << 4)) & 0x030c30c3;
    v = (v | (v << 2)) & 0x09249249;
    v
}

/// Expand a 21-bit integer so its bits occupy every third position of a u64.
#[inline]
fn expand_bits_21(v: u64) -> u64 {
    let mut v = v & 0x1f_ffff;
    v = (v | (v << 32)) & 0x1f00000000ffff;
    v = (v | (v << 16)) & 0x1f0000ff0000ff;
    v = (v | (v << 8)) & 0x100f00f00f00f00f;
    v = (v | (v << 4)) & 0x10c30c30c30c30c3;
    v = (v | (v << 2)) & 0x1249249249249249;
    v
}

/// 30-bit Morton code from normalised coordinates in `[0, 1]`.
///
/// Coordinates outside the unit cube are clamped.
#[inline]
pub fn morton3d(x: f32, y: f32, z: f32) -> u32 {
    let scale = 1024.0;
    let xi = (x * scale).clamp(0.0, 1023.0) as u32;
    let yi = (y * scale).clamp(0.0, 1023.0) as u32;
    let zi = (z * scale).clamp(0.0, 1023.0) as u32;
    (expand_bits_10(xi) << 2) | (expand_bits_10(yi) << 1) | expand_bits_10(zi)
}

/// 63-bit Morton code from normalised coordinates in `[0, 1]`.
///
/// Coordinates outside the unit cube are clamped.
#[inline]
pub fn morton3d_u64(x: f32, y: f32, z: f32) -> u64 {
    let scale = 2097152.0; // 2^21
    let xi = (x as f64 * scale).clamp(0.0, 2097151.0) as u64;
    let yi = (y as f64 * scale).clamp(0.0, 2097151.0) as u64;
    let zi = (z as f64 * scale).clamp(0.0, 2097151.0) as u64;
    (expand_bits_21(xi) << 2) | (expand_bits_21(yi) << 1) | expand_bits_21(zi)
}

/// Helper that normalises points into a scene bounding box before encoding.
#[derive(Debug, Clone, Copy)]
pub struct MortonEncoder {
    origin: Vec3,
    inv_extent: Vec3,
}

impl MortonEncoder {
    /// Build an encoder for points inside `bounds`. Degenerate (zero-extent)
    /// axes map to coordinate 0.
    pub fn new(bounds: &Aabb) -> Self {
        let e = bounds.extent();
        let inv = Vec3::new(
            if e.x > 0.0 { 1.0 / e.x } else { 0.0 },
            if e.y > 0.0 { 1.0 / e.y } else { 0.0 },
            if e.z > 0.0 { 1.0 / e.z } else { 0.0 },
        );
        MortonEncoder {
            origin: bounds.min,
            inv_extent: inv,
        }
    }

    /// Encode a point as a 63-bit Morton key.
    #[inline]
    pub fn encode(&self, p: Vec3) -> MortonKey {
        let n = (p - self.origin) * self.inv_extent;
        morton3d_u64(n.x, n.y, n.z)
    }
}

/// Extension trait so call sites can write `key.encode(...)`-style helpers.
pub trait MortonKeyExt {
    /// Number of leading bits shared with `other` (used by LBVH split finding).
    fn common_prefix(self, other: Self) -> u32;
}

impl MortonKeyExt for u64 {
    #[inline]
    fn common_prefix(self, other: Self) -> u32 {
        (self ^ other).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_patterns() {
        assert_eq!(expand_bits_10(0b1), 0b1);
        assert_eq!(expand_bits_10(0b11), 0b1001);
        assert_eq!(expand_bits_10(0x3ff).count_ones(), 10);
        assert_eq!(expand_bits_21(0x1f_ffff).count_ones(), 21);
    }

    #[test]
    fn interleaving_is_injective_on_grid() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for x in 0..8 {
            for y in 0..8 {
                for z in 0..8 {
                    let code = morton3d(x as f32 / 8.0, y as f32 / 8.0, z as f32 / 8.0);
                    assert!(seen.insert(code), "collision at ({x},{y},{z})");
                }
            }
        }
    }

    #[test]
    fn z_order_groups_nearby_points() {
        // Points in the same octant share the top interleaved bits, so their
        // codes are closer to each other than to a point in a far octant.
        let a = morton3d_u64(0.1, 0.1, 0.1);
        let b = morton3d_u64(0.12, 0.11, 0.09);
        let c = morton3d_u64(0.9, 0.9, 0.9);
        assert!(a.abs_diff(b) < a.abs_diff(c));
        assert!(MortonKeyExt::common_prefix(a, b) > MortonKeyExt::common_prefix(a, c));
    }

    #[test]
    fn clamping_out_of_range_inputs() {
        assert_eq!(morton3d(-1.0, -5.0, -0.1), morton3d(0.0, 0.0, 0.0));
        assert_eq!(morton3d_u64(2.0, 1.5, 7.0), morton3d_u64(1.0, 1.0, 1.0));
    }

    #[test]
    fn encoder_normalises_into_bounds() {
        let bounds = Aabb::new(Vec3::new(-10.0, 0.0, 5.0), Vec3::new(10.0, 20.0, 25.0));
        let enc = MortonEncoder::new(&bounds);
        let lo = enc.encode(bounds.min);
        let hi = enc.encode(bounds.max);
        let mid = enc.encode(bounds.center());
        assert_eq!(lo, 0);
        assert!(hi > mid && mid > lo);
    }

    #[test]
    fn encoder_handles_degenerate_axes() {
        // A planar cloud (all z equal) — common for the LiDAR-like dataset —
        // must not produce NaNs or panics.
        let bounds = Aabb::new(Vec3::new(0.0, 0.0, 1.0), Vec3::new(4.0, 4.0, 1.0));
        let enc = MortonEncoder::new(&bounds);
        let k = enc.encode(Vec3::new(2.0, 2.0, 1.0));
        assert!(k > 0);
    }

    #[test]
    fn common_prefix_of_equal_keys_is_64() {
        assert_eq!(MortonKeyExt::common_prefix(42u64, 42u64), 64);
        assert_eq!(MortonKeyExt::common_prefix(0u64, 1u64), 63);
    }
}
