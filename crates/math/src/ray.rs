//! Rays with the `[t_min, t_max]` segment semantics used by OptiX.
//!
//! RTNN casts *very short* rays: `t_min = 0`, `t_max = 1e-16`, direction
//! `[1, 0, 0]` (Section 3.1). With such rays, ray–AABB intersection almost
//! always succeeds through "Condition 2" of the paper (ray origin inside the
//! AABB), which is exactly what makes the mapping equivalent to a point-in-
//! AABB test.

use crate::Vec3;
use serde::{Deserialize, Serialize};

/// The `t_max` RTNN uses for its degenerate "point probe" rays.
pub const SHORT_RAY_TMAX: f32 = 1e-16;

/// A ray `P(t) = origin + t * direction`, restricted to `t ∈ [t_min, t_max]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ray {
    /// Ray origin `O`.
    pub origin: Vec3,
    /// Ray direction `d`. Not required to be normalised.
    pub direction: Vec3,
    /// Lower bound of the valid segment.
    pub t_min: f32,
    /// Upper bound of the valid segment.
    pub t_max: f32,
}

impl Ray {
    /// A general-purpose ray over `[t_min, t_max]`.
    #[inline]
    pub fn new(origin: Vec3, direction: Vec3, t_min: f32, t_max: f32) -> Self {
        Ray {
            origin,
            direction,
            t_min,
            t_max,
        }
    }

    /// An unbounded ray (`t ∈ [0, +inf)`).
    #[inline]
    pub fn unbounded(origin: Vec3, direction: Vec3) -> Self {
        Ray {
            origin,
            direction,
            t_min: 0.0,
            t_max: f32::INFINITY,
        }
    }

    /// The degenerate short ray RTNN casts from a query point (Listing 1,
    /// line 18): origin at the query, direction `[1,0,0]`, `t_max = 1e-16`.
    #[inline]
    pub fn point_probe(query: Vec3) -> Self {
        Ray {
            origin: query,
            direction: Vec3::UNIT_X,
            t_min: 0.0,
            t_max: SHORT_RAY_TMAX,
        }
    }

    /// Evaluate the ray at parameter `t`.
    #[inline]
    pub fn at(&self, t: f32) -> Vec3 {
        self.origin + self.direction * t
    }

    /// True if `t` lies in the valid segment.
    #[inline]
    pub fn contains_t(&self, t: f32) -> bool {
        t >= self.t_min && t <= self.t_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_along_ray() {
        let r = Ray::new(
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(0.0, 1.0, 0.0),
            0.0,
            10.0,
        );
        assert_eq!(r.at(0.0), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(r.at(2.5), Vec3::new(1.0, 4.5, 3.0));
    }

    #[test]
    fn point_probe_matches_paper_parameters() {
        let q = Vec3::new(0.5, -0.5, 2.0);
        let r = Ray::point_probe(q);
        assert_eq!(r.origin, q);
        assert_eq!(r.direction, Vec3::UNIT_X);
        assert_eq!(r.t_min, 0.0);
        assert_eq!(r.t_max, SHORT_RAY_TMAX);
        // The probe segment is (numerically) a point: its extent is far below
        // any realistic AABB size, so Condition 1 hits are impossible in
        // practice and Condition 2 (origin inside the box) dominates.
        assert!(r.at(r.t_max).distance(q) < 1e-12);
    }

    #[test]
    fn t_containment() {
        let r = Ray::new(Vec3::ZERO, Vec3::UNIT_X, 1.0, 5.0);
        assert!(!r.contains_t(0.5));
        assert!(r.contains_t(1.0));
        assert!(r.contains_t(3.0));
        assert!(r.contains_t(5.0));
        assert!(!r.contains_t(5.1));
    }

    #[test]
    fn unbounded_ray_accepts_any_nonnegative_t() {
        let r = Ray::unbounded(Vec3::ZERO, Vec3::UNIT_X);
        assert!(r.contains_t(0.0));
        assert!(r.contains_t(1e30));
        assert!(!r.contains_t(-1.0));
    }
}
