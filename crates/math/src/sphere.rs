//! Spheres — the primitive RTNN attaches to every search point.
//!
//! Step 2 of the search (Section 3.1) is a point-in-sphere test executed in
//! the IS shader: `distance²(query, center) < radius²`.

use crate::{Aabb, Vec3};
use serde::{Deserialize, Serialize};

/// A sphere with `center` and `radius`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sphere {
    pub center: Vec3,
    pub radius: f32,
}

impl Sphere {
    /// Construct a sphere.
    #[inline]
    pub const fn new(center: Vec3, radius: f32) -> Self {
        Sphere { center, radius }
    }

    /// The tightest AABB enclosing the sphere (width `2r`).
    #[inline]
    pub fn bounding_box(&self) -> Aabb {
        Aabb::around_sphere(self.center, self.radius)
    }

    /// Point-in-sphere test using squared distances (no sqrt), exactly as the
    /// paper's IS shader does (Listing 1, line 28).
    #[inline]
    pub fn contains_point(&self, p: Vec3) -> bool {
        self.center.distance_squared(p) < self.radius * self.radius
    }

    /// Inclusive variant (`<=`), used by correctness oracles so boundary
    /// points are classified consistently.
    #[inline]
    pub fn contains_point_inclusive(&self, p: Vec3) -> bool {
        self.center.distance_squared(p) <= self.radius * self.radius
    }

    /// Volume `4/3 π r³`.
    #[inline]
    pub fn volume(&self) -> f32 {
        4.0 / 3.0 * std::f32::consts::PI * self.radius.powi(3)
    }

    /// The sphere circumscribing a cube of width `a` centred at `center`
    /// (radius `a·√3/2`). Used by the KNN megacell-to-AABB conversion
    /// (Figure 10c).
    #[inline]
    pub fn circumscribing_cube(center: Vec3, cube_width: f32) -> Self {
        Sphere {
            center,
            radius: cube_width * 0.5 * 3.0_f32.sqrt(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership_uses_strict_inequality() {
        let s = Sphere::new(Vec3::ZERO, 1.0);
        assert!(s.contains_point(Vec3::new(0.5, 0.5, 0.5)));
        assert!(!s.contains_point(Vec3::new(1.0, 0.0, 0.0))); // boundary excluded
        assert!(s.contains_point_inclusive(Vec3::new(1.0, 0.0, 0.0)));
        assert!(!s.contains_point(Vec3::new(0.8, 0.8, 0.8)));
    }

    #[test]
    fn bounding_box_circumscribes() {
        let s = Sphere::new(Vec3::new(1.0, 2.0, 3.0), 0.5);
        let b = s.bounding_box();
        assert_eq!(b, Aabb::cube(s.center, 1.0));
        // Every point of the sphere is inside the box: check axis extremes.
        for axis in 0..3 {
            let mut offset = Vec3::ZERO;
            match axis {
                0 => offset.x = s.radius,
                1 => offset.y = s.radius,
                _ => offset.z = s.radius,
            }
            assert!(b.contains_point(s.center + offset));
            assert!(b.contains_point(s.center - offset));
        }
    }

    #[test]
    fn sphere_is_inside_its_aabb_but_not_vice_versa() {
        // The corner of the AABB is outside the sphere — the source of the
        // step-1 false positives the paper discusses.
        let s = Sphere::new(Vec3::ZERO, 1.0);
        let corner = Vec3::splat(1.0 - 1e-4);
        assert!(s.bounding_box().contains_point(corner));
        assert!(!s.contains_point(corner));
    }

    #[test]
    fn volume_formula() {
        let s = Sphere::new(Vec3::ZERO, 2.0);
        let expected = 4.0 / 3.0 * std::f32::consts::PI * 8.0;
        assert!((s.volume() - expected).abs() < 1e-4);
    }

    #[test]
    fn circumsphere_of_cube_contains_corners() {
        let a = 2.0;
        let s = Sphere::circumscribing_cube(Vec3::ZERO, a);
        let corner = Vec3::splat(a / 2.0);
        assert!(s.contains_point_inclusive(corner));
        // ...and is tight: scaling the radius down slightly excludes it.
        let smaller = Sphere::new(Vec3::ZERO, s.radius * 0.999);
        assert!(!smaller.contains_point_inclusive(corner));
    }
}
