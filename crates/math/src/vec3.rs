//! A minimal `f32` 3-vector.
//!
//! Deliberately small: only the operations the neighbor-search pipeline and
//! the simulator need. Distances are usually compared squared (the paper's
//! IS shader compares `distance(ray_origin, curPoint) < radius^2`,
//! Listing 1), so [`Vec3::distance_squared`] is the hot path.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Index, Mul, Neg, Sub, SubAssign};

/// A 3-component single-precision vector / point.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    pub x: f32,
    pub y: f32,
    pub z: f32,
}

impl Vec3 {
    /// The origin / zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// All-ones vector.
    pub const ONE: Vec3 = Vec3 {
        x: 1.0,
        y: 1.0,
        z: 1.0,
    };
    /// Unit vector along +x — the fixed ray direction RTNN uses (Section 3.1).
    pub const UNIT_X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };

    /// Construct from components.
    #[inline]
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Vec3 { x, y, z }
    }

    /// Construct with all three components equal to `v`.
    #[inline]
    pub const fn splat(v: f32) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Construct from a `[x, y, z]` array.
    #[inline]
    pub const fn from_array(a: [f32; 3]) -> Self {
        Vec3 {
            x: a[0],
            y: a[1],
            z: a[2],
        }
    }

    /// Convert to a `[x, y, z]` array.
    #[inline]
    pub const fn to_array(self) -> [f32; 3] {
        [self.x, self.y, self.z]
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f32 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * rhs.z - self.z * rhs.y,
            y: self.z * rhs.x - self.x * rhs.z,
            z: self.x * rhs.y - self.y * rhs.x,
        }
    }

    /// Squared Euclidean length.
    #[inline]
    pub fn length_squared(self) -> f32 {
        self.dot(self)
    }

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f32 {
        self.length_squared().sqrt()
    }

    /// Squared distance to `other`. Hot path of the IS shader sphere test.
    #[inline]
    pub fn distance_squared(self, other: Vec3) -> f32 {
        (self - other).length_squared()
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Vec3) -> f32 {
        self.distance_squared(other).sqrt()
    }

    /// Returns the vector scaled to unit length. Zero vectors are returned
    /// unchanged (callers in this workspace never normalise degenerate rays).
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let len = self.length();
        if len > 0.0 {
            self / len
        } else {
            self
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.x.min(rhs.x),
            y: self.y.min(rhs.y),
            z: self.z.min(rhs.z),
        }
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.x.max(rhs.x),
            y: self.y.max(rhs.y),
            z: self.z.max(rhs.z),
        }
    }

    /// Component-wise absolute value.
    #[inline]
    pub fn abs(self) -> Vec3 {
        Vec3 {
            x: self.x.abs(),
            y: self.y.abs(),
            z: self.z.abs(),
        }
    }

    /// Largest component.
    #[inline]
    pub fn max_component(self) -> f32 {
        self.x.max(self.y).max(self.z)
    }

    /// Smallest component.
    #[inline]
    pub fn min_component(self) -> f32 {
        self.x.min(self.y).min(self.z)
    }

    /// Linear interpolation: `self * (1 - t) + other * t`.
    #[inline]
    pub fn lerp(self, other: Vec3, t: f32) -> Vec3 {
        self * (1.0 - t) + other * t
    }

    /// True if all components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.x + rhs.x,
            y: self.y + rhs.y,
            z: self.z + rhs.z,
        }
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.x - rhs.x,
            y: self.y - rhs.y,
            z: self.z - rhs.z,
        }
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f32) -> Vec3 {
        Vec3 {
            x: self.x * rhs,
            y: self.y * rhs,
            z: self.z * rhs,
        }
    }
}

impl Mul<Vec3> for f32 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl Mul<Vec3> for Vec3 {
    type Output = Vec3;
    /// Component-wise product.
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.x * rhs.x,
            y: self.y * rhs.y,
            z: self.z * rhs.z,
        }
    }
}

impl Div<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f32) -> Vec3 {
        Vec3 {
            x: self.x / rhs,
            y: self.y / rhs,
            z: self.z / rhs,
        }
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3 {
            x: -self.x,
            y: -self.y,
            z: -self.z,
        }
    }
}

impl Index<usize> for Vec3 {
    type Output = f32;
    #[inline]
    fn index(&self, i: usize) -> &f32 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl From<[f32; 3]> for Vec3 {
    #[inline]
    fn from(a: [f32; 3]) -> Self {
        Vec3::from_array(a)
    }
}

impl From<Vec3> for [f32; 3] {
    #[inline]
    fn from(v: Vec3) -> Self {
        v.to_array()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_round_trip() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v.to_array(), [1.0, 2.0, 3.0]);
        assert_eq!(Vec3::from_array([1.0, 2.0, 3.0]), v);
        assert_eq!(Vec3::from([4.0, 5.0, 6.0]).x, 4.0);
        assert_eq!(<[f32; 3]>::from(v), [1.0, 2.0, 3.0]);
        assert_eq!(Vec3::splat(2.5), Vec3::new(2.5, 2.5, 2.5));
    }

    #[test]
    fn arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a * b, Vec3::new(4.0, 10.0, 18.0));
        assert_eq!(b / 2.0, Vec3::new(2.0, 2.5, 3.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn dot_cross_and_lengths() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(b.cross(a), Vec3::new(0.0, 0.0, -1.0));
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.length_squared(), 25.0);
        assert_eq!(v.length(), 5.0);
        assert_eq!(v.normalized().length(), 1.0);
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn distances_are_symmetric() {
        // Commutativity of the distance measure is the property the whole
        // RTNN formulation rests on (Section 3.1).
        let p = Vec3::new(1.0, -2.0, 0.5);
        let q = Vec3::new(-3.0, 4.0, 2.0);
        assert_eq!(p.distance_squared(q), q.distance_squared(p));
        assert!((p.distance(q) - p.distance_squared(q).sqrt()).abs() < 1e-6);
        assert_eq!(p.distance(p), 0.0);
    }

    #[test]
    fn component_wise_helpers() {
        let a = Vec3::new(1.0, 5.0, -3.0);
        let b = Vec3::new(2.0, 4.0, -6.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 4.0, -6.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, -3.0));
        assert_eq!(a.abs(), Vec3::new(1.0, 5.0, 3.0));
        assert_eq!(a.max_component(), 5.0);
        assert_eq!(a.min_component(), -3.0);
        assert_eq!(a[0], 1.0);
        assert_eq!(a[1], 5.0);
        assert_eq!(a[2], -3.0);
    }

    #[test]
    #[should_panic]
    fn index_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 4.0, 8.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 4.0));
    }

    #[test]
    fn finiteness() {
        assert!(Vec3::new(1.0, 2.0, 3.0).is_finite());
        assert!(!Vec3::new(f32::NAN, 0.0, 0.0).is_finite());
        assert!(!Vec3::new(0.0, f32::INFINITY, 0.0).is_finite());
    }
}
