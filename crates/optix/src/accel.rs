//! The opaque acceleration-structure handle a search backend returns.
//!
//! Search backends (`rtnn::Backend` implementations) build different things:
//! the ray-tracing backends build a [`Gas`] over per-point AABBs, while the
//! brute-force oracle keeps no structure at all and scans the flat point
//! array at traversal time. [`Accel`] is the common handle: it records the
//! per-point AABB width the structure was built for, the simulated build
//! cost, and — for structure-owning backends — the [`Gas`] itself.
//!
//! [`AccelRef`] is the borrowed, traversal-facing view: engines can hold a
//! structure in a cache (or adopt one from a streaming index) and hand
//! backends a cheap copyable reference per launch.

use crate::gas::Gas;
use rtnn_bvh::BuildProfile;
use rtnn_gpusim::Device;
use rtnn_math::{Aabb, Vec3};
use rtnn_parallel::par_map;

/// Outcome of an in-place [`Accel`] refit through a backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefitOutcome {
    /// Simulated milliseconds the refit cost.
    pub refit_ms: f64,
    /// SAH cost of the tree after the refit, when the backend exposes tree
    /// quality (`None` for structure-less backends and for hardware shims
    /// that treat the tree as opaque).
    pub sah_after: Option<f64>,
    /// Measured host-side cost of the refit (wall vs aggregate work);
    /// all-zero for structure-less handles whose refit is free.
    pub host: BuildProfile,
}

#[derive(Debug, Clone)]
enum AccelKind {
    /// A BVH-backed structure. `expose_quality` is false for backends that
    /// treat the hardware tree as opaque (no SAH introspection).
    Gas { gas: Gas, expose_quality: bool },
    /// No structure: the backend scans the flat point array at traversal
    /// time (the brute-force oracle).
    Flat { num_points: usize },
}

/// An acceleration structure built by a search backend (see module docs).
#[derive(Debug, Clone)]
pub struct Accel {
    kind: AccelKind,
    aabb_width: f32,
    build_ms: f64,
}

impl Accel {
    /// Wrap a built [`Gas`] whose primitives are width-`aabb_width` cubes,
    /// exposing its tree quality (SAH) to policies.
    pub fn from_gas(gas: Gas, aabb_width: f32) -> Self {
        let build_ms = gas.build_time_ms();
        Accel {
            kind: AccelKind::Gas {
                gas,
                expose_quality: true,
            },
            aabb_width,
            build_ms,
        }
    }

    /// Wrap a built [`Gas`] as an *opaque* hardware structure: traversable,
    /// refittable, but without SAH introspection — the contract a real
    /// OptiX 7 device gives you.
    pub fn from_gas_opaque(gas: Gas, aabb_width: f32) -> Self {
        let build_ms = gas.build_time_ms();
        Accel {
            kind: AccelKind::Gas {
                gas,
                expose_quality: false,
            },
            aabb_width,
            build_ms,
        }
    }

    /// A structure-less handle over `num_points` points with a nominal
    /// per-point AABB width (the brute-force oracle's "structure").
    pub fn flat(num_points: usize, aabb_width: f32) -> Self {
        Accel {
            kind: AccelKind::Flat { num_points },
            aabb_width,
            build_ms: 0.0,
        }
    }

    /// Borrowed traversal-facing view.
    pub fn as_ref(&self) -> AccelRef<'_> {
        match &self.kind {
            AccelKind::Gas { gas, .. } => AccelRef::Gas {
                gas,
                aabb_width: self.aabb_width,
            },
            AccelKind::Flat { num_points } => AccelRef::Flat {
                num_points: *num_points,
                aabb_width: self.aabb_width,
            },
        }
    }

    /// The underlying BVH-backed structure, when the backend exposes tree
    /// quality (`None` for flat handles and opaque hardware trees).
    pub fn gas(&self) -> Option<&Gas> {
        match &self.kind {
            AccelKind::Gas {
                gas,
                expose_quality: true,
            } => Some(gas),
            _ => None,
        }
    }

    /// Per-point AABB width the structure was built for.
    pub fn aabb_width(&self) -> f32 {
        self.aabb_width
    }

    /// Simulated milliseconds the build cost (0 for flat handles).
    pub fn build_time_ms(&self) -> f64 {
        self.build_ms
    }

    /// Measured host-side cost of the build. Available for *every*
    /// BVH-backed handle — including opaque hardware trees, since host
    /// build time is observable without SAH introspection — and `None` for
    /// structure-less handles.
    pub fn host_build_profile(&self) -> Option<BuildProfile> {
        match &self.kind {
            AccelKind::Gas { gas, .. } => Some(gas.host_build_profile()),
            AccelKind::Flat { .. } => None,
        }
    }

    /// Number of point primitives covered.
    pub fn num_primitives(&self) -> usize {
        match &self.kind {
            AccelKind::Gas { gas, .. } => gas.num_primitives(),
            AccelKind::Flat { num_points } => *num_points,
        }
    }

    /// Refit the structure in place over moved `points` (same count, same
    /// AABB width). Returns `None` when the handle cannot absorb the update
    /// — primitive count changed, or the structure kind does not support
    /// refits — in which case the caller should rebuild.
    pub fn refit_in_place(&mut self, device: &Device, points: &[Vec3]) -> Option<RefitOutcome> {
        let width = self.aabb_width;
        match &mut self.kind {
            AccelKind::Gas {
                gas,
                expose_quality,
            } => {
                if gas.num_primitives() != points.len() {
                    return None;
                }
                let aabbs = par_map(points.len(), |i| Aabb::cube(points[i], width));
                let refit = gas.refit(device, &aabbs).ok()?;
                Some(RefitOutcome {
                    refit_ms: refit.refit_time_ms,
                    sah_after: expose_quality.then_some(refit.stats.sah_after),
                    host: refit.host,
                })
            }
            AccelKind::Flat { num_points } => {
                // Positions are read from the caller's array at traversal
                // time, so a same-count "refit" is free; a count change
                // needs a (also free) rebuild, reported as unsupported for
                // uniformity with the structure-owning backends.
                if *num_points != points.len() {
                    return None;
                }
                Some(RefitOutcome {
                    refit_ms: 0.0,
                    sah_after: None,
                    host: BuildProfile::default(),
                })
            }
        }
    }
}

/// Borrowed view of an [`Accel`], cheap to copy per launch. Engines that
/// keep structures in caches (or adopt one from a streaming index) hand
/// backends this view instead of the owning handle.
#[derive(Debug, Clone, Copy)]
pub enum AccelRef<'a> {
    /// A BVH-backed structure.
    Gas {
        /// The structure.
        gas: &'a Gas,
        /// Per-point AABB width it was built for.
        aabb_width: f32,
    },
    /// No structure: scan the flat point array.
    Flat {
        /// Number of point primitives.
        num_points: usize,
        /// Nominal per-point AABB width (containment tests use it).
        aabb_width: f32,
    },
}

impl<'a> AccelRef<'a> {
    /// Number of point primitives covered.
    pub fn num_primitives(&self) -> usize {
        match self {
            AccelRef::Gas { gas, .. } => gas.num_primitives(),
            AccelRef::Flat { num_points, .. } => *num_points,
        }
    }

    /// Per-point AABB width the structure was built for.
    pub fn aabb_width(&self) -> f32 {
        match self {
            AccelRef::Gas { aabb_width, .. } | AccelRef::Flat { aabb_width, .. } => *aabb_width,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtnn_bvh::BuildParams;

    fn cloud(n: usize) -> Vec<Vec3> {
        (0..n)
            .map(|i| Vec3::new((i % 7) as f32, ((i / 7) % 7) as f32, (i / 49) as f32))
            .collect()
    }

    #[test]
    fn gas_handle_round_trip() {
        let device = Device::rtx_2080();
        let pts = cloud(200);
        let gas = Gas::build_from_points(&device, &pts, 0.5, BuildParams::default()).unwrap();
        let accel = Accel::from_gas(gas, 1.0);
        assert_eq!(accel.num_primitives(), 200);
        assert_eq!(accel.aabb_width(), 1.0);
        assert!(accel.build_time_ms() > 0.0);
        assert!(accel.gas().is_some());
        assert!(matches!(accel.as_ref(), AccelRef::Gas { aabb_width, .. } if aabb_width == 1.0));
        assert_eq!(accel.as_ref().num_primitives(), 200);
    }

    #[test]
    fn opaque_handle_hides_the_tree_but_still_refits() {
        let device = Device::rtx_2080();
        let mut pts = cloud(150);
        let gas = Gas::build_from_points(&device, &pts, 0.5, BuildParams::default()).unwrap();
        let mut accel = Accel::from_gas_opaque(gas, 1.0);
        assert!(accel.gas().is_none(), "opaque trees expose no BVH");
        for p in pts.iter_mut() {
            p.x += 0.05;
        }
        let outcome = accel.refit_in_place(&device, &pts).unwrap();
        assert!(outcome.refit_ms > 0.0);
        assert_eq!(outcome.sah_after, None, "opaque trees expose no SAH");
        // Transparent handles report quality.
        let gas2 = Gas::build_from_points(&device, &pts, 0.5, BuildParams::default()).unwrap();
        let mut transparent = Accel::from_gas(gas2, 1.0);
        let o2 = transparent.refit_in_place(&device, &pts).unwrap();
        assert!(o2.sah_after.is_some());
    }

    #[test]
    fn refit_rejects_count_changes() {
        let device = Device::rtx_2080();
        let pts = cloud(100);
        let gas = Gas::build_from_points(&device, &pts, 0.5, BuildParams::default()).unwrap();
        let mut accel = Accel::from_gas(gas, 1.0);
        assert!(accel.refit_in_place(&device, &pts[..50]).is_none());
        let mut flat = Accel::flat(100, 1.0);
        assert!(flat.refit_in_place(&device, &pts).is_some());
        assert!(flat.refit_in_place(&device, &pts[..50]).is_none());
    }

    #[test]
    fn flat_handle_has_no_structure_cost() {
        let accel = Accel::flat(42, 2.0);
        assert_eq!(accel.num_primitives(), 42);
        assert_eq!(accel.build_time_ms(), 0.0);
        assert!(accel.gas().is_none());
        assert!(matches!(
            accel.as_ref(),
            AccelRef::Flat {
                num_points: 42,
                aabb_width
            } if aabb_width == 2.0
        ));
    }
}
