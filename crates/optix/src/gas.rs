//! Geometry acceleration structures (the OptiX "GAS").
//!
//! In OptiX, `optixAccelBuild` runs on the SMs, is non-programmable, and its
//! cost is what the bundling optimisation of Section 5.2 trades against
//! search time (`T_build = k1 · M`, Equation 3). A [`Gas`] therefore records
//! the simulated build time reported by the device's build-rate model along
//! with the structure itself.

use rtnn_bvh::{
    build_bvh_profiled, refit_bvh_profiled, BuildParams, BuildProfile, Bvh, RefitError, RefitStats,
};
use rtnn_gpusim::device::OutOfDeviceMemory;
use rtnn_gpusim::Device;
use rtnn_math::{Aabb, Vec3};
use rtnn_parallel::par_map;
use rtnn_telemetry::Telemetry;

/// Simulated device-side size of one BVH node in bytes.
pub const NODE_BYTES: u64 = 32;
/// Simulated device-side size of one primitive record (AABB + id) in bytes.
pub const PRIM_BYTES: u64 = 32;

/// Outcome of an in-place GAS refit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GasRefit {
    /// Simulated milliseconds the refit took on the device.
    pub refit_time_ms: f64,
    /// BVH-level statistics (nodes updated, SAH cost before/after).
    pub stats: RefitStats,
    /// Measured host-side cost of the refit (wall vs aggregate work).
    pub host: BuildProfile,
}

/// An acceleration structure over custom AABB primitives.
#[derive(Debug, Clone)]
pub struct Gas {
    bvh: Bvh,
    build_time_ms: f64,
    memory_bytes: u64,
    host_build: BuildProfile,
    host_refit: Option<BuildProfile>,
}

impl Gas {
    /// Build a GAS over explicit primitive AABBs on `device`.
    ///
    /// Fails with [`OutOfDeviceMemory`] if the structure does not fit in the
    /// device's memory (the `OOM` outcomes of Figure 11).
    pub fn build(
        device: &Device,
        prim_aabbs: &[Aabb],
        params: BuildParams,
    ) -> Result<Gas, OutOfDeviceMemory> {
        let tel = Telemetry::current();
        let mut span = tel.as_ref().map(|t| t.span("accel.build"));
        let (bvh, host_build) = build_bvh_profiled(prim_aabbs, params);
        let memory_bytes =
            bvh.num_nodes() as u64 * NODE_BYTES + bvh.num_primitives() as u64 * PRIM_BYTES;
        device.check_allocation(memory_bytes)?;
        let build_time_ms = device.accel_build_time_ms(prim_aabbs.len());
        if let Some(t) = &tel {
            t.counter_add("accel.builds", 1);
            t.observe("accel.build.device_ms", build_time_ms);
        }
        if let Some(span) = span.as_mut() {
            span.attr("device_ms", build_time_ms)
                .attr("primitives", prim_aabbs.len() as f64)
                .attr("memory_bytes", memory_bytes as f64)
                .attr_wall("host_wall_ms", host_build.host_wall_ms)
                .attr_wall("work_ms", host_build.work_ms)
                .attr_wall("threads", host_build.threads as f64);
        }
        drop(span);
        Ok(Gas {
            bvh,
            build_time_ms,
            memory_bytes,
            host_build,
            host_refit: None,
        })
    }

    /// Build a GAS whose primitives are width-`2·radius` cubes centred at
    /// `points` — `buildBVH(points, radius)` from Listing 1.
    pub fn build_from_points(
        device: &Device,
        points: &[Vec3],
        radius: f32,
        params: BuildParams,
    ) -> Result<Gas, OutOfDeviceMemory> {
        let aabbs = par_map(points.len(), |i| Aabb::cube(points[i], 2.0 * radius));
        Gas::build(device, &aabbs, params)
    }

    /// Refit the structure in place over moved primitives (the OptiX
    /// `BUILD_OPERATION_UPDATE` path): AABBs are recomputed bottom-up while
    /// the tree topology — and therefore the device-memory footprint — stays
    /// fixed. Returns the simulated refit time in milliseconds along with
    /// the refit statistics; fails if the primitive count changed (a refit
    /// cannot re-topologize — rebuild instead).
    pub fn refit(&mut self, device: &Device, prim_aabbs: &[Aabb]) -> Result<GasRefit, RefitError> {
        let tel = Telemetry::current();
        let mut span = tel.as_ref().map(|t| t.span("accel.refit"));
        let (stats, host) = refit_bvh_profiled(&mut self.bvh, prim_aabbs)?;
        self.host_refit = Some(host);
        let refit_time_ms = device.accel_refit_time_ms(prim_aabbs.len());
        if let Some(t) = &tel {
            t.counter_add("accel.refits", 1);
            t.observe("accel.refit.device_ms", refit_time_ms);
        }
        if let Some(span) = span.as_mut() {
            span.attr("device_ms", refit_time_ms)
                .attr("primitives", prim_aabbs.len() as f64)
                .attr("nodes_updated", stats.nodes_updated as f64)
                .attr_wall("host_wall_ms", host.host_wall_ms)
                .attr_wall("work_ms", host.work_ms);
        }
        drop(span);
        Ok(GasRefit {
            refit_time_ms,
            stats,
            host,
        })
    }

    /// Refit over width-`2·radius` cubes centred at `points`, the moving
    /// counterpart of [`Gas::build_from_points`].
    pub fn refit_from_points(
        &mut self,
        device: &Device,
        points: &[Vec3],
        radius: f32,
    ) -> Result<GasRefit, RefitError> {
        let aabbs = par_map(points.len(), |i| Aabb::cube(points[i], 2.0 * radius));
        self.refit(device, &aabbs)
    }

    /// The underlying BVH.
    #[inline]
    pub fn bvh(&self) -> &Bvh {
        &self.bvh
    }

    /// Simulated milliseconds spent building the structure.
    #[inline]
    pub fn build_time_ms(&self) -> f64 {
        self.build_time_ms
    }

    /// Measured host-side cost of the build (wall vs aggregate work across
    /// the construction workers).
    #[inline]
    pub fn host_build_profile(&self) -> BuildProfile {
        self.host_build
    }

    /// Measured host-side cost of the most recent refit, if any.
    #[inline]
    pub fn host_refit_profile(&self) -> Option<BuildProfile> {
        self.host_refit
    }

    /// Simulated device-memory footprint in bytes.
    #[inline]
    pub fn memory_bytes(&self) -> u64 {
        self.memory_bytes
    }

    /// Number of primitives in the structure.
    #[inline]
    pub fn num_primitives(&self) -> usize {
        self.bvh.num_primitives()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtnn_bvh::validate_bvh;

    fn grid_points(n: usize) -> Vec<Vec3> {
        (0..n)
            .map(|i| Vec3::new((i % 10) as f32, ((i / 10) % 10) as f32, (i / 100) as f32))
            .collect()
    }

    #[test]
    fn build_produces_valid_structure_with_costs() {
        let device = Device::rtx_2080();
        let gas = Gas::build_from_points(&device, &grid_points(500), 0.5, BuildParams::default())
            .unwrap();
        assert_eq!(gas.num_primitives(), 500);
        assert!(gas.build_time_ms() > 0.0);
        assert!(gas.memory_bytes() > 0);
        validate_bvh(gas.bvh()).unwrap();
    }

    #[test]
    fn refit_updates_structure_cheaply_and_keeps_memory() {
        let device = Device::rtx_2080();
        let mut pts = grid_points(600);
        let mut gas = Gas::build_from_points(&device, &pts, 0.5, BuildParams::default()).unwrap();
        let memory_before = gas.memory_bytes();
        let build_ms = gas.build_time_ms();
        for (i, p) in pts.iter_mut().enumerate() {
            p.x += 0.2 * ((i % 5) as f32);
        }
        let refit = gas.refit_from_points(&device, &pts, 0.5).unwrap();
        assert!(refit.refit_time_ms > 0.0);
        assert!(refit.refit_time_ms < build_ms);
        assert_eq!(refit.stats.nodes_updated, gas.bvh().num_nodes());
        assert_eq!(gas.memory_bytes(), memory_before);
        validate_bvh(gas.bvh()).unwrap();
        // The refit tracked the motion: root bounds cover the moved points.
        for &p in &pts {
            assert!(gas.bvh().root_bounds().contains_point(p));
        }
    }

    #[test]
    fn host_profiles_are_measured_for_build_and_refit() {
        let device = Device::rtx_2080();
        let pts = grid_points(400);
        let mut gas = Gas::build_from_points(&device, &pts, 0.5, BuildParams::default()).unwrap();
        let build = gas.host_build_profile();
        assert!(build.host_wall_ms > 0.0);
        assert!(build.work_ms > 0.0);
        assert!(build.threads >= 1);
        assert!(gas.host_refit_profile().is_none(), "no refit ran yet");
        let refit = gas.refit_from_points(&device, &pts, 0.5).unwrap();
        assert!(refit.host.host_wall_ms > 0.0);
        assert_eq!(gas.host_refit_profile(), Some(refit.host));
    }

    #[test]
    fn refit_with_wrong_count_is_rejected() {
        let device = Device::rtx_2080();
        let pts = grid_points(100);
        let mut gas = Gas::build_from_points(&device, &pts, 0.5, BuildParams::default()).unwrap();
        assert!(gas.refit_from_points(&device, &pts[..50], 0.5).is_err());
    }

    #[test]
    fn build_time_scales_linearly_with_primitives() {
        let device = Device::rtx_2080();
        let t = |n: usize| {
            Gas::build_from_points(&device, &grid_points(n), 0.5, BuildParams::default())
                .unwrap()
                .build_time_ms()
        };
        let t1 = t(200);
        let t2 = t(400);
        let t4 = t(800);
        assert!(((t4 - t2) - 2.0 * (t2 - t1)).abs() < 1e-9);
    }

    #[test]
    fn empty_build_is_cheap_and_valid() {
        let device = Device::rtx_2080();
        let gas = Gas::build(&device, &[], BuildParams::default()).unwrap();
        assert_eq!(gas.num_primitives(), 0);
        assert_eq!(gas.build_time_ms(), 0.0);
    }

    #[test]
    fn oversized_build_reports_oom() {
        // The tiny test device has 256 MB; ask for more primitives than fit.
        let device = Device::tiny_test_device();
        let too_many = (device.config().memory_bytes / PRIM_BYTES + 1) as usize;
        // Constructing that many real AABBs would blow host memory, so check
        // the allocation path directly with the device API instead.
        assert!(device
            .check_allocation(too_many as u64 * PRIM_BYTES)
            .is_err());
        // And a small build on the same device succeeds.
        assert!(
            Gas::build_from_points(&device, &grid_points(100), 0.3, BuildParams::default()).is_ok()
        );
    }
}
