//! # rtnn-optix
//!
//! An OptiX-like ray-casting programming model on top of the simulated GPU
//! (`rtnn-gpusim`) and the BVH substrate (`rtnn-bvh`).
//!
//! The real RTNN is written against OptiX 7.1: it builds a geometry
//! acceleration structure (GAS) over per-point AABB primitives, then
//! launches a pipeline whose programmable stages — Ray Generation (RG),
//! Intersection (IS), Any-Hit (AH), Closest-Hit (CH) and Miss shaders — are
//! compiled into one CUDA kernel, one ray per thread, with BVH traversal
//! accelerated by the RT cores (the paper's Figure 3).
//!
//! This crate reproduces that model:
//!
//! * [`Gas`] is the acceleration structure: it owns a BVH over the primitive
//!   AABBs and carries the simulated build time (linear in the primitive
//!   count) and device-memory footprint.
//! * [`RayProgram`] is the shader binding table: user code implements
//!   `ray_gen` / `intersection` / `closest_hit` / `miss`, and terminates
//!   rays from the IS shader exactly the way RTNN's AH shader does.
//! * [`Pipeline::launch`] maps launch indices to rays, groups 32 consecutive
//!   rays into a warp (the property the query-scheduling optimisation of
//!   Section 4 exploits), traverses the BVH for each ray, and charges the
//!   traversal, shader and memory work to the simulated device.

pub mod accel;
pub mod gas;
pub mod pipeline;
pub mod shader;

pub use accel::{Accel, AccelRef, RefitOutcome};
pub use gas::{Gas, GasRefit};
pub use pipeline::{LaunchMetrics, LaunchResult, Pipeline};
pub use shader::{IsVerdict, RayProgram};
