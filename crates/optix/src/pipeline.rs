//! The launch path: map launch indices to rays, group 32 consecutive rays
//! into a warp, traverse the GAS for every ray, run the shaders, and charge
//! the work to the simulated device.
//!
//! The warp grouping matters: the paper's Section 3.2.1 observes that
//! "OptiX groups every 32 adjacent rays generated in the RG shader into a
//! warp", so adjacent launch indices that correspond to spatially distant
//! queries diverge. The query-scheduling optimisation exists precisely to
//! exploit this grouping, and the simulator reproduces it: a warp's RT-core
//! time is driven by the *union* of the BVH nodes its rays visit, its
//! shader time by its slowest lane, and its memory traffic by the distinct
//! cache lines it touches.

use crate::gas::{Gas, NODE_BYTES, PRIM_BYTES};
use crate::shader::{IsVerdict, RayProgram};
use rtnn_bvh::{TraversalControl, TraversalTrace};
use rtnn_gpusim::kernel::{BVH_NODES_BASE, BVH_PRIMS_BASE};
use rtnn_gpusim::{Device, IsShaderKind, KernelMetrics};
use serde::{Deserialize, Serialize};

/// Aggregate counters for one launch, merging device metrics with the
/// ray-tracing-specific counters the paper's figures plot.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LaunchMetrics {
    /// Device-level metrics (simulated time, cycles, caches, occupancy).
    pub kernel: KernelMetrics,
    /// Number of rays that produced a ray in the RG shader.
    pub active_rays: u64,
    /// Total BVH node visits summed over rays (the paper's "tree traversals").
    pub node_visits: u64,
    /// Total primitive-AABB tests inside leaves.
    pub prim_tests: u64,
    /// Total IS shader invocations (Figure 8's y-axis).
    pub is_calls: u64,
    /// Rays that were terminated early by the IS/AH shader.
    pub terminated_rays: u64,
    /// Rays for which at least one intersection was accepted (CH shader ran).
    pub hit_rays: u64,
}

impl LaunchMetrics {
    /// Merge another launch executed back-to-back with this one.
    pub fn merge_sequential(&mut self, other: &LaunchMetrics) {
        self.kernel.merge_sequential(&other.kernel);
        self.active_rays += other.active_rays;
        self.node_visits += other.node_visits;
        self.prim_tests += other.prim_tests;
        self.is_calls += other.is_calls;
        self.terminated_rays += other.terminated_rays;
        self.hit_rays += other.hit_rays;
    }

    /// Simulated launch time in milliseconds.
    pub fn time_ms(&self) -> f64 {
        self.kernel.time_ms
    }
}

/// The result of one pipeline launch: the final per-ray payloads (indexed by
/// launch index) and the launch metrics.
#[derive(Debug, Clone)]
pub struct LaunchResult<P> {
    /// Final payload of every launch index (default-initialised for masked
    /// lanes).
    pub payloads: Vec<P>,
    /// Simulated execution metrics.
    pub metrics: LaunchMetrics,
}

/// A ray-casting pipeline bound to a device.
#[derive(Debug, Clone)]
pub struct Pipeline<'d> {
    device: &'d Device,
}

impl<'d> Pipeline<'d> {
    /// Create a pipeline on `device`.
    pub fn new(device: &'d Device) -> Self {
        Pipeline { device }
    }

    /// The device this pipeline launches on.
    pub fn device(&self) -> &Device {
        self.device
    }

    /// Launch `num_rays` rays of `program` against `gas`.
    ///
    /// `is_kind` selects the simulated cost of each IS invocation (range
    /// with/without sphere test, or KNN) — see
    /// [`rtnn_gpusim::CostModel`].
    pub fn launch<P: RayProgram>(
        &self,
        gas: &Gas,
        num_rays: usize,
        program: &P,
        is_kind: IsShaderKind,
    ) -> LaunchResult<P::Payload> {
        let bvh = gas.bvh();
        let warp_size = self.device.config().warp_size as f64;

        // Per-ray outputs produced inside the warp closure.
        #[derive(Default, Clone)]
        struct RayOutput<P> {
            payload: P,
            node_visits: u64,
            prim_tests: u64,
            is_calls: u64,
            terminated: bool,
            hit: bool,
            active: bool,
        }

        let (outputs, kernel) = self.device.run_warps(num_rays, |range, shard| {
            let mut warp_results: Vec<RayOutput<P::Payload>> = Vec::with_capacity(range.len());
            let mut trace = TraversalTrace::default();
            // Warp-level aggregation buffers.
            let mut union_nodes: Vec<u32> = Vec::new();
            let mut union_prims: Vec<u32> = Vec::new();
            let mut addresses: Vec<u64> = Vec::new();
            let mut sum_lane_nodes = 0u64;
            let mut sum_lane_is = 0u64;
            let mut max_lane_prim_tests = 0u64;

            for launch_index in range.clone() {
                let mut out = RayOutput::<P::Payload>::default();
                if let Some((ray, mut payload)) = program.ray_gen(launch_index as u32) {
                    out.active = true;
                    let mut hit_any = false;
                    let stats = bvh.traverse_traced(&ray, &mut trace, |prim_id| {
                        match program.intersection(launch_index as u32, prim_id, &mut payload) {
                            IsVerdict::Ignore => TraversalControl::Continue,
                            IsVerdict::Accept => {
                                hit_any = true;
                                TraversalControl::Continue
                            }
                            IsVerdict::AcceptAndTerminate => {
                                hit_any = true;
                                TraversalControl::Terminate
                            }
                        }
                    });
                    if hit_any {
                        program.closest_hit(launch_index as u32, &mut payload);
                    } else {
                        program.miss(launch_index as u32, &mut payload);
                    }
                    out.node_visits = stats.nodes_visited;
                    out.prim_tests = stats.prim_tests;
                    out.is_calls = stats.is_calls;
                    out.terminated = stats.terminated;
                    out.hit = hit_any;
                    out.payload = payload;

                    sum_lane_nodes += stats.nodes_visited;
                    sum_lane_is += stats.is_calls;
                    max_lane_prim_tests = max_lane_prim_tests.max(stats.prim_tests);
                    union_nodes.extend_from_slice(&trace.node_visits);
                    union_prims.extend_from_slice(&trace.prim_visits);
                }
                warp_results.push(out);
            }

            // Deduplicate the warp's footprint: traversal of a node shared by
            // several rays in the warp is broadcast, so it is charged once.
            union_nodes.sort_unstable();
            union_nodes.dedup();
            union_prims.sort_unstable();
            union_prims.dedup();

            // RT-core work: one node test per distinct node, one AABB test per
            // distinct primitive slot the warp scanned.
            shard.charge_rt_node_tests(union_nodes.len() as f64);
            shard.charge_rt_prim_tests(union_prims.len() as f64);
            // SM shader work: IS invocations interrupt hardware traversal at
            // lane-specific points, so they are only partially SIMT-parallel;
            // every lane's IS calls are charged, packed `is_simt_width` wide.
            let is_width = shard.cost().is_simt_width.max(1.0);
            shard.charge_is_calls(sum_lane_is as f64 / is_width, is_kind);

            // Memory traffic: BVH nodes and primitive records the warp read.
            addresses.clear();
            addresses.extend(
                union_nodes
                    .iter()
                    .map(|&n| BVH_NODES_BASE + n as u64 * NODE_BYTES),
            );
            addresses.extend(
                union_prims
                    .iter()
                    .map(|&p| BVH_PRIMS_BASE + p as u64 * PRIM_BYTES),
            );
            shard.access_warp_memory(&addresses);

            // SIMT efficiency: useful lane-work over issued warp-work.
            let issued = (union_nodes.len() as f64).max(1e-9) * warp_size;
            shard.note_simt_work(sum_lane_nodes as f64, issued);

            warp_results
        });

        let mut metrics = LaunchMetrics {
            kernel,
            ..Default::default()
        };
        let mut payloads = Vec::with_capacity(outputs.len());
        for out in outputs {
            metrics.active_rays += out.active as u64;
            metrics.node_visits += out.node_visits;
            metrics.prim_tests += out.prim_tests;
            metrics.is_calls += out.is_calls;
            metrics.terminated_rays += out.terminated as u64;
            metrics.hit_rays += out.hit as u64;
            payloads.push(out.payload);
        }
        LaunchResult { payloads, metrics }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtnn_bvh::BuildParams;
    use rtnn_math::{Ray, Vec3};

    /// The unoptimised RTNN range-search shader from Listing 1, specialised
    /// for tests: payload is the list of neighbor ids, capped at `k`.
    struct RangeProgram {
        queries: Vec<Vec3>,
        points: Vec<Vec3>,
        radius: f32,
        k: usize,
    }

    impl RayProgram for RangeProgram {
        type Payload = Vec<u32>;
        fn ray_gen(&self, launch_index: u32) -> Option<(Ray, Vec<u32>)> {
            self.queries
                .get(launch_index as usize)
                .map(|&q| (Ray::point_probe(q), Vec::new()))
        }
        fn intersection(
            &self,
            launch_index: u32,
            prim_id: u32,
            payload: &mut Vec<u32>,
        ) -> IsVerdict {
            let q = self.queries[launch_index as usize];
            let p = self.points[prim_id as usize];
            if q.distance_squared(p) < self.radius * self.radius {
                payload.push(prim_id);
                if payload.len() >= self.k {
                    IsVerdict::AcceptAndTerminate
                } else {
                    IsVerdict::Accept
                }
            } else {
                IsVerdict::Ignore
            }
        }
    }

    fn cloud() -> Vec<Vec3> {
        let mut pts = Vec::new();
        for x in 0..8 {
            for y in 0..8 {
                for z in 0..8 {
                    pts.push(Vec3::new(x as f32, y as f32, z as f32));
                }
            }
        }
        pts
    }

    fn brute_force_range(points: &[Vec3], q: Vec3, r: f32) -> Vec<u32> {
        let mut out: Vec<u32> = points
            .iter()
            .enumerate()
            .filter(|(_, &p)| q.distance_squared(p) < r * r)
            .map(|(i, _)| i as u32)
            .collect();
        out.sort();
        out
    }

    #[test]
    fn launch_produces_correct_neighbor_sets() {
        let device = Device::rtx_2080();
        let points = cloud();
        let radius = 1.1;
        let gas = Gas::build_from_points(&device, &points, radius, BuildParams::default()).unwrap();
        let queries: Vec<Vec3> = vec![
            Vec3::new(3.5, 3.5, 3.5),
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(7.2, 6.9, 7.1),
        ];
        let program = RangeProgram {
            queries: queries.clone(),
            points: points.clone(),
            radius,
            k: 1000,
        };
        let pipeline = Pipeline::new(&device);
        let result = pipeline.launch(&gas, queries.len(), &program, IsShaderKind::RangeSphereTest);
        for (qi, q) in queries.iter().enumerate() {
            let mut got = result.payloads[qi].clone();
            got.sort();
            assert_eq!(got, brute_force_range(&points, *q, radius), "query {qi}");
        }
        assert_eq!(result.metrics.active_rays, 3);
        assert!(result.metrics.is_calls >= result.metrics.hit_rays);
        assert!(result.metrics.time_ms() > 0.0);
    }

    #[test]
    fn termination_caps_the_neighbor_count() {
        let device = Device::rtx_2080();
        let points = cloud();
        let radius = 2.5;
        let gas = Gas::build_from_points(&device, &points, radius, BuildParams::default()).unwrap();
        let queries = vec![Vec3::new(4.0, 4.0, 4.0)];
        let program = RangeProgram {
            queries,
            points,
            radius,
            k: 5,
        };
        let result =
            Pipeline::new(&device).launch(&gas, 1, &program, IsShaderKind::RangeSphereTest);
        assert_eq!(result.payloads[0].len(), 5);
        assert_eq!(result.metrics.terminated_rays, 1);
    }

    #[test]
    fn masked_lanes_do_no_work() {
        let device = Device::rtx_2080();
        let points = cloud();
        let gas = Gas::build_from_points(&device, &points, 1.0, BuildParams::default()).unwrap();
        struct MaskedProgram;
        impl RayProgram for MaskedProgram {
            type Payload = u32;
            fn ray_gen(&self, _: u32) -> Option<(Ray, u32)> {
                None
            }
            fn intersection(&self, _: u32, _: u32, _: &mut u32) -> IsVerdict {
                IsVerdict::Ignore
            }
        }
        let result =
            Pipeline::new(&device).launch(&gas, 100, &MaskedProgram, IsShaderKind::RangeSphereTest);
        assert_eq!(result.metrics.active_rays, 0);
        assert_eq!(result.metrics.is_calls, 0);
        assert_eq!(result.metrics.node_visits, 0);
        assert_eq!(result.payloads.len(), 100);
    }

    #[test]
    fn miss_and_closest_hit_dispatch() {
        let device = Device::rtx_2080();
        let points = vec![Vec3::ZERO];
        let gas = Gas::build_from_points(&device, &points, 0.5, BuildParams::default()).unwrap();
        /// Payload records which terminal shader ran.
        struct TerminalProgram;
        impl RayProgram for TerminalProgram {
            type Payload = (bool, bool); // (closest_hit_ran, miss_ran)
            fn ray_gen(&self, launch_index: u32) -> Option<(Ray, (bool, bool))> {
                let q = if launch_index == 0 {
                    Vec3::ZERO
                } else {
                    Vec3::new(100.0, 0.0, 0.0)
                };
                Some((Ray::point_probe(q), (false, false)))
            }
            fn intersection(&self, _: u32, _: u32, _: &mut (bool, bool)) -> IsVerdict {
                IsVerdict::Accept
            }
            fn closest_hit(&self, _: u32, payload: &mut (bool, bool)) {
                payload.0 = true;
            }
            fn miss(&self, _: u32, payload: &mut (bool, bool)) {
                payload.1 = true;
            }
        }
        let result =
            Pipeline::new(&device).launch(&gas, 2, &TerminalProgram, IsShaderKind::RangeSphereTest);
        assert_eq!(result.payloads[0], (true, false));
        assert_eq!(result.payloads[1], (false, true));
        assert_eq!(result.metrics.hit_rays, 1);
    }

    #[test]
    fn coherent_launch_is_not_slower_than_scrambled_launch() {
        // The Figure 5 effect at pipeline level: same set of queries, same
        // total work, different launch-index order.
        let device = Device::rtx_2080();
        let points = cloud();
        let radius = 1.2;
        let gas = Gas::build_from_points(&device, &points, radius, BuildParams::default()).unwrap();
        // Queries on a fine grid, in raster order.
        let mut queries = Vec::new();
        for x in 0..16 {
            for y in 0..16 {
                for z in 0..4 {
                    queries.push(Vec3::new(x as f32 * 0.5, y as f32 * 0.5, z as f32 * 2.0));
                }
            }
        }
        let n = queries.len();
        let mut scrambled = queries.clone();
        // Deterministic scramble.
        for i in 0..n {
            let j = (i * 2654435761) % n;
            scrambled.swap(i, j);
        }
        let run = |qs: Vec<Vec3>| {
            let program = RangeProgram {
                queries: qs,
                points: points.clone(),
                radius,
                k: 1000,
            };
            Pipeline::new(&device)
                .launch(&gas, n, &program, IsShaderKind::RangeSphereTest)
                .metrics
        };
        let ordered = run(queries);
        let shuffled = run(scrambled);
        // Same total algorithmic work...
        assert_eq!(ordered.is_calls, shuffled.is_calls);
        // ...but the ordered launch is at least as fast and at least as
        // cache-friendly.
        assert!(ordered.kernel.time_ms <= shuffled.kernel.time_ms);
        assert!(ordered.kernel.simt_efficiency >= shuffled.kernel.simt_efficiency);
    }
}
