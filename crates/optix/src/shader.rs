//! The programmable shader interface (the OptiX shader binding table).
//!
//! A [`RayProgram`] supplies the stages of Figure 3 of the paper:
//!
//! * `ray_gen` — the RG shader: turns a launch index into a ray and its
//!   initial per-ray payload (RTNN's payload is the neighbor list / priority
//!   queue plus a hit counter). Returning `None` masks the lane out, which
//!   is how partial warps and inactive queries are expressed.
//! * `intersection` — the IS shader: called for every primitive whose AABB
//!   the ray intersects. Its verdict distinguishes "not actually a neighbor"
//!   (sphere test failed), "neighbor recorded, keep going", and "neighbor
//!   recorded and the K-th one found, terminate the ray" — the latter is the
//!   AH-shader termination of Listing 1.
//! * `closest_hit` / `miss` — called once per ray after traversal, depending
//!   on whether any intersection was accepted.

use rtnn_math::Ray;

/// Verdict returned by the intersection shader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsVerdict {
    /// The primitive is not actually a hit (e.g. the sphere test failed);
    /// traversal continues. The IS call is still charged — this is exactly
    /// the "false positive" cost of long rays discussed in Section 3.1.
    Ignore,
    /// The primitive is a hit; record it and continue traversal.
    Accept,
    /// The primitive is a hit and the ray should stop (RTNN's AH shader
    /// terminating the ray once `K` neighbors are found).
    AcceptAndTerminate,
}

/// A shader binding: the user-programmable stages of one pipeline launch.
///
/// `Payload` is the per-ray mutable state threaded through the shaders and
/// returned from the launch (one per launch index).
pub trait RayProgram: Sync {
    /// Per-ray state.
    type Payload: Send + Default + Clone;

    /// RG shader: produce the ray and initial payload for `launch_index`, or
    /// `None` to leave the lane idle.
    fn ray_gen(&self, launch_index: u32) -> Option<(Ray, Self::Payload)>;

    /// IS shader: `prim_id` is the primitive whose AABB the ray intersected.
    fn intersection(
        &self,
        launch_index: u32,
        prim_id: u32,
        payload: &mut Self::Payload,
    ) -> IsVerdict;

    /// CH shader: called after traversal if at least one intersection was
    /// accepted. Default: no-op.
    fn closest_hit(&self, _launch_index: u32, _payload: &mut Self::Payload) {}

    /// Miss shader: called after traversal if no intersection was accepted.
    /// Default: no-op.
    fn miss(&self, _launch_index: u32, _payload: &mut Self::Payload) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtnn_math::Vec3;

    /// A minimal program used to exercise the default shader bodies.
    struct CountingProgram;

    impl RayProgram for CountingProgram {
        type Payload = u32;
        fn ray_gen(&self, launch_index: u32) -> Option<(Ray, u32)> {
            if launch_index.is_multiple_of(2) {
                Some((Ray::point_probe(Vec3::ZERO), 0))
            } else {
                None
            }
        }
        fn intersection(&self, _: u32, _: u32, payload: &mut u32) -> IsVerdict {
            *payload += 1;
            if *payload >= 3 {
                IsVerdict::AcceptAndTerminate
            } else {
                IsVerdict::Accept
            }
        }
    }

    #[test]
    fn ray_gen_can_mask_lanes() {
        let p = CountingProgram;
        assert!(p.ray_gen(0).is_some());
        assert!(p.ray_gen(1).is_none());
    }

    #[test]
    fn default_ch_and_miss_are_noops() {
        let p = CountingProgram;
        let mut payload = 7u32;
        p.closest_hit(0, &mut payload);
        p.miss(0, &mut payload);
        assert_eq!(payload, 7);
    }

    #[test]
    fn intersection_verdicts() {
        let p = CountingProgram;
        let mut payload = 0u32;
        assert_eq!(p.intersection(0, 0, &mut payload), IsVerdict::Accept);
        assert_eq!(p.intersection(0, 1, &mut payload), IsVerdict::Accept);
        assert_eq!(
            p.intersection(0, 2, &mut payload),
            IsVerdict::AcceptAndTerminate
        );
        assert_eq!(payload, 3);
    }
}
