//! # rtnn-parallel
//!
//! A small CPU parallel-execution substrate used by the host-side stages of
//! the reproduction (BVH construction, query sorting, dataset generation)
//! and by the GPU simulator to execute independent warps concurrently.
//!
//! The approved dependency set does not include `rayon`, so this crate
//! provides the handful of primitives the workspace needs on top of
//! `crossbeam` scoped threads and `parking_lot`:
//!
//! * [`par_for_chunks`] — dynamic (work-stealing-ish) scheduling of index
//!   ranges over a fixed set of worker threads;
//! * [`par_map`] — parallel map over `0..n` producing a `Vec<R>`;
//! * [`par_map_slice`] — parallel map over a slice;
//! * [`par_reduce`] — parallel map-reduce over index chunks;
//! * [`par_sort_by_key`] — parallel merge of per-chunk sorts (used for the
//!   Morton sorts in the LBVH builder and the query scheduler);
//! * [`par_for_each_mut`] — parallel mutable visit of a slice's elements
//!   (used by `rtnn-serve` to fan one query tick out over its shard
//!   indexes, each worker owning one shard exclusively).
//!
//! All functions fall back to sequential execution for small inputs so unit
//! tests on tiny data never pay thread start-up costs.

pub mod pool;

pub use pool::{current_num_threads, set_num_threads};

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Inputs smaller than this run sequentially.
const SEQUENTIAL_CUTOFF: usize = 2048;

/// Split `0..n` into dynamically scheduled chunks of at least `min_chunk`
/// items and run `f` on each chunk, using the workspace thread pool.
///
/// `f` receives the index range of the chunk. Chunks are claimed from a
/// shared atomic counter, so imbalanced chunk costs still load-balance.
pub fn par_for_chunks<F>(n: usize, min_chunk: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let threads = current_num_threads();
    if n == 0 {
        return;
    }
    if n <= SEQUENTIAL_CUTOFF.min(min_chunk.max(1)) || threads <= 1 {
        f(0..n);
        return;
    }
    // Aim for ~4 chunks per thread for load balancing, but never below
    // min_chunk items per chunk.
    let chunk = (n / (threads * 4)).max(min_chunk.max(1));
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                f(start..end);
            });
        }
    })
    .expect("worker thread panicked");
}

/// Parallel map over `0..n`: returns `vec![f(0), f(1), ..., f(n-1)]`.
pub fn par_map<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send + Default + Clone,
    F: Fn(usize) -> R + Sync,
{
    let mut out = vec![R::default(); n];
    {
        let out_ptr = SendPtr(out.as_mut_ptr());
        par_for_chunks(n, 64, |range| {
            let ptr = out_ptr;
            for i in range {
                // SAFETY: each index is visited by exactly one chunk, so no
                // two threads write the same element, and `out` outlives the
                // scope inside `par_for_chunks`.
                unsafe { ptr.0.add(i).write(f(i)) };
            }
        });
    }
    out
}

/// Parallel map over a slice.
pub fn par_map_slice<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send + Default + Clone,
    F: Fn(&T) -> R + Sync,
{
    par_map(items.len(), |i| f(&items[i]))
}

/// Visit every element of `items` exactly once with `&mut` access, in
/// parallel: elements are claimed from a shared atomic counter by up to
/// [`current_num_threads`] workers, so expensive elements load-balance
/// across the pool. `f` receives `(index, &mut item)`.
///
/// Unlike the other helpers this one never batches: each claim is a single
/// element, because the intended workload (one neighbor-search shard per
/// element) is coarse. Small inputs still short-circuit to the sequential
/// path.
pub fn par_for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if n == 0 {
        return;
    }
    if n == 1 || threads <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let base = SendPtr(items.as_mut_ptr());
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let ptr = base;
                // SAFETY: each index is claimed by exactly one worker, so
                // no two threads alias the same element, and `items`
                // outlives the scope.
                f(i, unsafe { &mut *ptr.0.add(i) });
            });
        }
    })
    .expect("worker thread panicked");
}

/// Parallel map-reduce: `f` maps each index chunk to a partial accumulator,
/// `reduce` folds the partials together (order unspecified).
pub fn par_reduce<A, F, R>(n: usize, min_chunk: usize, identity: A, f: F, reduce: R) -> A
where
    A: Send + Clone,
    F: Fn(Range<usize>) -> A + Sync,
    R: Fn(A, A) -> A,
{
    if n == 0 {
        return identity;
    }
    let partials = parking_lot::Mutex::new(Vec::new());
    par_for_chunks(n, min_chunk, |range| {
        let partial = f(range);
        partials.lock().push(partial);
    });
    partials.into_inner().into_iter().fold(identity, reduce)
}

/// Parallel stable sort of `items` by a key function: the slice is split
/// into per-thread chunks, each chunk is sorted, and the chunks are merged.
pub fn par_sort_by_key<T, K, F>(items: &mut [T], key: F)
where
    T: Send + Clone,
    K: Ord,
    F: Fn(&T) -> K + Sync,
{
    let n = items.len();
    let threads = current_num_threads();
    if n <= SEQUENTIAL_CUTOFF || threads <= 1 {
        items.sort_by_key(|t| key(t));
        return;
    }
    let chunk = n.div_ceil(threads);
    // Sort each chunk in parallel.
    {
        let base = SendPtr(items.as_mut_ptr());
        par_for_chunks(threads, 1, |range| {
            // Capture the wrapper (not its raw-pointer field) so the closure
            // stays `Sync` under edition-2021 disjoint capture rules.
            let ptr = base;
            for t in range {
                let start = t * chunk;
                if start >= n {
                    continue;
                }
                let end = ((t + 1) * chunk).min(n);
                // SAFETY: chunks are disjoint.
                let slice =
                    unsafe { std::slice::from_raw_parts_mut(ptr.0.add(start), end - start) };
                slice.sort_by_key(|t| key(t));
            }
        });
    }
    // Iteratively merge neighbouring sorted runs. The merge passes are
    // sequential (there are only log2(threads) of them and they are
    // memory-bandwidth bound); each pass copies the current contents once.
    let mut run = chunk;
    while run < n {
        let src = items.to_vec();
        let mut start = 0;
        while start < n {
            let mid = (start + run).min(n);
            let end = (start + 2 * run).min(n);
            merge_by_key(
                &src[start..mid],
                &src[mid..end],
                &mut items[start..end],
                &key,
            );
            start = end;
        }
        run *= 2;
    }
}

fn merge_by_key<T: Clone, K: Ord, F: Fn(&T) -> K>(a: &[T], b: &[T], out: &mut [T], key: &F) {
    let (mut i, mut j, mut k) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        if key(&a[i]) <= key(&b[j]) {
            out[k] = a[i].clone();
            i += 1;
        } else {
            out[k] = b[j].clone();
            j += 1;
        }
        k += 1;
    }
    while i < a.len() {
        out[k] = a[i].clone();
        i += 1;
        k += 1;
    }
    while j < b.len() {
        out[k] = b[j].clone();
        j += 1;
        k += 1;
    }
}

/// A raw pointer wrapper that asserts Send/Sync so disjoint-index writes can
/// cross the scoped-thread boundary. All uses in this crate guarantee each
/// element is written by at most one thread.
struct SendPtr<T>(*mut T);
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn chunks_cover_every_index_once() {
        let n = 100_000;
        let hits = (0..n).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
        par_for_chunks(n, 128, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn empty_and_tiny_inputs() {
        par_for_chunks(0, 16, |_| panic!("no chunks expected"));
        let seen = AtomicUsize::new(0);
        par_for_chunks(1, 16, |r| {
            assert_eq!(r, 0..1);
            seen.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), 1);
        assert!(par_map(0, |i| i).is_empty());
    }

    #[test]
    fn par_map_matches_sequential() {
        let n = 50_000;
        let par = par_map(n, |i| (i * i) as u64);
        let seq: Vec<u64> = (0..n).map(|i| (i * i) as u64).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn par_map_slice_matches() {
        let data: Vec<i64> = (0..30_000).map(|i| i - 15_000).collect();
        let out = par_map_slice(&data, |&x| x.abs());
        assert_eq!(out, data.iter().map(|x| x.abs()).collect::<Vec<_>>());
    }

    #[test]
    fn reduce_sums_correctly() {
        let n = 100_000u64;
        let total = par_reduce(
            n as usize,
            128,
            0u64,
            |range| range.map(|i| i as u64).sum::<u64>(),
            |a, b| a + b,
        );
        assert_eq!(total, n * (n - 1) / 2);
        assert_eq!(par_reduce(0, 1, 7u64, |_| 0, |a, b| a + b), 7);
    }

    #[test]
    fn sort_by_key_sorts_large_inputs() {
        let n = 200_000;
        let mut data: Vec<u64> = (0..n)
            .map(|i| ((i as u64).wrapping_mul(0x9E3779B97F4A7C15)) >> 17)
            .collect();
        let mut expected = data.clone();
        expected.sort();
        par_sort_by_key(&mut data, |&x| x);
        assert_eq!(data, expected);
    }

    #[test]
    fn sort_by_key_is_correct_on_small_inputs() {
        let mut v = vec![5u32, 1, 4, 2, 3];
        par_sort_by_key(&mut v, |&x| x);
        assert_eq!(v, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn for_each_mut_visits_every_element_once() {
        let mut items: Vec<u64> = (0..500).collect();
        par_for_each_mut(&mut items, |i, item| {
            assert_eq!(*item, i as u64);
            *item += 1_000;
        });
        assert!(items
            .iter()
            .enumerate()
            .all(|(i, &v)| v == i as u64 + 1_000));
        // Empty and single-element inputs take the sequential path.
        let mut empty: Vec<u64> = Vec::new();
        par_for_each_mut(&mut empty, |_, _| panic!("no elements expected"));
        let mut one = vec![7u64];
        par_for_each_mut(&mut one, |i, item| *item += i as u64 + 1);
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn reduce_runs_work_in_parallel_threads() {
        // Not a strict parallelism assertion (machine may have 1 CPU), just a
        // smoke test that the atomic accumulation path is exercised.
        let counter = AtomicU64::new(0);
        par_for_chunks(10_000, 64, |range| {
            counter.fetch_add(range.len() as u64, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 10_000);
    }
}
