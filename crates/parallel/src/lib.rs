//! # rtnn-parallel
//!
//! A small CPU parallel-execution substrate used by the host-side stages of
//! the reproduction (BVH construction, query sorting, dataset generation)
//! and by the GPU simulator to execute independent warps concurrently.
//!
//! The approved dependency set does not include `rayon`, so this crate
//! provides the handful of primitives the workspace needs on top of
//! `crossbeam` scoped threads and `parking_lot`:
//!
//! * [`par_for_chunks`] — dynamic (work-stealing-ish) scheduling of index
//!   ranges over a fixed set of worker threads;
//! * [`par_map`] — parallel map over `0..n` producing a `Vec<R>`;
//! * [`par_map_slice`] — parallel map over a slice;
//! * [`par_map_collect`] — parallel indexed map for coarse work items,
//!   without the `Default + Clone` bound of [`par_map`] (used by the
//!   parallel LBVH builder's level pipeline and the concurrent
//!   structure-cache/shard builds);
//! * [`par_reduce`] — parallel map-reduce over index chunks;
//! * [`par_sort_by_key`] — parallel merge of per-chunk sorts (used for the
//!   Morton sorts in the LBVH builder and the query scheduler);
//! * [`par_for_each_mut`] — parallel mutable visit of a slice's elements
//!   (used by `rtnn-serve` to fan one query tick out over its shard
//!   indexes, each worker owning one shard exclusively);
//! * [`par_map_collect_mut`] — [`par_for_each_mut`] that also collects one
//!   result per element;
//! * [`par_chunks_mut`] — disjoint mutable chunks of a slice with
//!   aggregate busy-time metering (the builder's work/wall accounting).
//!
//! The crate also hosts the small sequential [`UnionFind`] used by the
//! analytics layer to merge DBSCAN neighborhoods — it lives here (rather
//! than in a geometry crate) because it is a generic id-space primitive
//! with the same "results never depend on execution order" contract as the
//! parallel helpers (see [`UnionFind::min_labels`]).
//!
//! Every primitive has a *deterministic-ordering guarantee*: output element
//! `i` is always `f(i, …)` regardless of the thread count or how chunks were
//! claimed — parallelism changes wall-clock time, never results.
//!
//! All functions fall back to sequential execution for small inputs so unit
//! tests on tiny data never pay thread start-up costs.

pub mod pool;
pub mod union_find;

pub use pool::{current_num_threads, set_num_threads, with_thread_count};
pub use union_find::UnionFind;

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Inputs smaller than this run sequentially.
const SEQUENTIAL_CUTOFF: usize = 2048;

/// Split `0..n` into dynamically scheduled chunks of at least `min_chunk`
/// items and run `f` on each chunk, using the workspace thread pool.
///
/// `f` receives the index range of the chunk. Chunks are claimed from a
/// shared atomic counter, so imbalanced chunk costs still load-balance.
pub fn par_for_chunks<F>(n: usize, min_chunk: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let threads = current_num_threads();
    if n == 0 {
        return;
    }
    if n <= SEQUENTIAL_CUTOFF.min(min_chunk.max(1)) || threads <= 1 {
        f(0..n);
        return;
    }
    // Aim for ~4 chunks per thread for load balancing, but never below
    // min_chunk items per chunk.
    let chunk = (n / (threads * 4)).max(min_chunk.max(1));
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                f(start..end);
            });
        }
    })
    .expect("worker thread panicked");
}

/// Parallel map over `0..n`: returns `vec![f(0), f(1), ..., f(n-1)]`.
pub fn par_map<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send + Default + Clone,
    F: Fn(usize) -> R + Sync,
{
    let mut out = vec![R::default(); n];
    {
        let out_ptr = SendPtr(out.as_mut_ptr());
        par_for_chunks(n, 64, |range| {
            let ptr = out_ptr;
            for i in range {
                // SAFETY: each index is visited by exactly one chunk, so no
                // two threads write the same element, and `out` outlives the
                // scope inside `par_for_chunks`.
                unsafe { ptr.0.add(i).write(f(i)) };
            }
        });
    }
    out
}

/// Parallel map over a slice.
pub fn par_map_slice<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send + Default + Clone,
    F: Fn(&T) -> R + Sync,
{
    par_map(items.len(), |i| f(&items[i]))
}

/// Parallel indexed map over `0..n` with the same deterministic-ordering
/// guarantee as [`par_for_each_mut`]: slot `i` of the result is always
/// `f(i)`, regardless of thread count or claim order.
///
/// Unlike [`par_map`] the result type needs neither `Default` nor `Clone`
/// (results are written exactly once into uninitialised slots), and the
/// scheduler claims aggressively (chunks shrink to a single item), so it is
/// the right primitive for *coarse* work items — one acceleration structure,
/// one spatial shard, one BVH subtree per index. For large maps of cheap
/// elements prefer [`par_map`].
pub fn par_map_collect<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    use std::mem::{ManuallyDrop, MaybeUninit};
    let mut out: Vec<MaybeUninit<R>> = Vec::with_capacity(n);
    // SAFETY: `MaybeUninit` slots require no initialisation.
    unsafe { out.set_len(n) };
    {
        let base = SendPtr(out.as_mut_ptr());
        par_for_chunks(n, 1, |range| {
            let ptr = base;
            for i in range {
                // SAFETY: each index is visited by exactly one chunk, so no
                // two threads write the same slot, and `out` outlives the
                // scope inside `par_for_chunks`.
                unsafe { ptr.0.add(i).write(MaybeUninit::new(f(i))) };
            }
        });
    }
    // SAFETY: every slot in 0..n was written exactly once above, so the
    // buffer is fully initialised; transfer ownership without dropping the
    // `MaybeUninit` wrapper. (If a worker panicked we never get here — the
    // elements leak, which is safe.)
    let mut out = ManuallyDrop::new(out);
    unsafe { Vec::from_raw_parts(out.as_mut_ptr() as *mut R, n, out.capacity()) }
}

/// [`par_for_each_mut`] that also collects one result per element:
/// element `i` is visited exactly once with `&mut` access and slot `i` of
/// the returned vector is `f(i, &mut items[i])`. Claims are single elements
/// (the intended work items — shards, structure builds — are coarse).
pub fn par_map_collect_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    use std::mem::{ManuallyDrop, MaybeUninit};
    let n = items.len();
    let threads = current_num_threads().min(n);
    if n <= 1 || threads <= 1 {
        return items
            .iter_mut()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let mut out: Vec<MaybeUninit<R>> = Vec::with_capacity(n);
    // SAFETY: `MaybeUninit` slots require no initialisation.
    unsafe { out.set_len(n) };
    {
        let base = SendPtr(items.as_mut_ptr());
        let out_base = SendPtr(out.as_mut_ptr());
        let next = AtomicUsize::new(0);
        crossbeam::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let (ptr, out_ptr) = (base, out_base);
                    // SAFETY: each index is claimed by exactly one worker,
                    // so neither the element nor the output slot is aliased,
                    // and both buffers outlive the scope.
                    let r = f(i, unsafe { &mut *ptr.0.add(i) });
                    unsafe { out_ptr.0.add(i).write(MaybeUninit::new(r)) };
                });
            }
        })
        .expect("worker thread panicked");
    }
    // SAFETY: every slot was written exactly once (see loop above).
    let mut out = ManuallyDrop::new(out);
    unsafe { Vec::from_raw_parts(out.as_mut_ptr() as *mut R, n, out.capacity()) }
}

/// Visit disjoint chunks of `items` (at least `min_chunk` elements each,
/// dynamically scheduled) with `&mut` access; `f` receives the chunk's
/// start index and the chunk slice. Returns the *aggregate busy time* in
/// milliseconds the workers spent inside `f` — the "work" term of a
/// work/wall accounting: on one thread it matches the wall time of the
/// region, on `t` threads it can approach `t ×` the wall time.
pub fn par_chunks_mut<T, F>(items: &mut [T], min_chunk: usize, f: F) -> f64
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    use std::sync::atomic::AtomicU64;
    use std::time::Instant;
    let n = items.len();
    if n == 0 {
        return 0.0;
    }
    let threads = current_num_threads();
    if n <= SEQUENTIAL_CUTOFF.min(min_chunk.max(1)) || threads <= 1 {
        let t = Instant::now();
        f(0, items);
        return t.elapsed().as_secs_f64() * 1e3;
    }
    let chunk = (n / (threads * 4)).max(min_chunk.max(1));
    let busy_nanos = AtomicU64::new(0);
    {
        let base = SendPtr(items.as_mut_ptr());
        let next = AtomicUsize::new(0);
        crossbeam::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|_| loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    let ptr = base;
                    // SAFETY: [start, end) ranges from the shared counter are
                    // disjoint, so the chunk slices never alias, and `items`
                    // outlives the scope.
                    let slice =
                        unsafe { std::slice::from_raw_parts_mut(ptr.0.add(start), end - start) };
                    let t = Instant::now();
                    f(start, slice);
                    busy_nanos.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                });
            }
        })
        .expect("worker thread panicked");
    }
    busy_nanos.load(Ordering::Relaxed) as f64 / 1e6
}

/// Visit every element of `items` exactly once with `&mut` access, in
/// parallel: elements are claimed from a shared atomic counter by up to
/// [`current_num_threads`] workers, so expensive elements load-balance
/// across the pool. `f` receives `(index, &mut item)`.
///
/// Unlike the other helpers this one never batches: each claim is a single
/// element, because the intended workload (one neighbor-search shard per
/// element) is coarse. Small inputs still short-circuit to the sequential
/// path.
pub fn par_for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if n == 0 {
        return;
    }
    if n == 1 || threads <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let base = SendPtr(items.as_mut_ptr());
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let ptr = base;
                // SAFETY: each index is claimed by exactly one worker, so
                // no two threads alias the same element, and `items`
                // outlives the scope.
                f(i, unsafe { &mut *ptr.0.add(i) });
            });
        }
    })
    .expect("worker thread panicked");
}

/// Parallel map-reduce: `f` maps each index chunk to a partial accumulator,
/// `reduce` folds the partials together (order unspecified).
pub fn par_reduce<A, F, R>(n: usize, min_chunk: usize, identity: A, f: F, reduce: R) -> A
where
    A: Send + Clone,
    F: Fn(Range<usize>) -> A + Sync,
    R: Fn(A, A) -> A,
{
    if n == 0 {
        return identity;
    }
    let partials = parking_lot::Mutex::new(Vec::new());
    par_for_chunks(n, min_chunk, |range| {
        let partial = f(range);
        partials.lock().push(partial);
    });
    partials.into_inner().into_iter().fold(identity, reduce)
}

/// Parallel stable sort of `items` by a key function: the slice is split
/// into per-thread chunks, each chunk is sorted, and the chunks are merged.
///
/// Returns the aggregate busy time in milliseconds spent sorting and
/// merging across all workers (see [`par_chunks_mut`] for the work/wall
/// convention); callers that don't meter simply ignore it. The sorted order
/// is deterministic for unique keys regardless of thread count.
pub fn par_sort_by_key<T, K, F>(items: &mut [T], key: F) -> f64
where
    T: Send + Clone,
    K: Ord,
    F: Fn(&T) -> K + Sync,
{
    use std::sync::atomic::AtomicU64;
    use std::time::Instant;
    let n = items.len();
    let threads = current_num_threads();
    if n <= SEQUENTIAL_CUTOFF || threads <= 1 {
        let t = Instant::now();
        items.sort_by_key(|t| key(t));
        return t.elapsed().as_secs_f64() * 1e3;
    }
    let chunk = n.div_ceil(threads);
    let busy_nanos = AtomicU64::new(0);
    // Sort each chunk in parallel.
    {
        let base = SendPtr(items.as_mut_ptr());
        par_for_chunks(threads, 1, |range| {
            // Capture the wrapper (not its raw-pointer field) so the closure
            // stays `Sync` under edition-2021 disjoint capture rules.
            let ptr = base;
            for t in range {
                let start = t * chunk;
                if start >= n {
                    continue;
                }
                let end = ((t + 1) * chunk).min(n);
                // SAFETY: chunks are disjoint.
                let slice =
                    unsafe { std::slice::from_raw_parts_mut(ptr.0.add(start), end - start) };
                let timer = Instant::now();
                slice.sort_by_key(|t| key(t));
                busy_nanos.fetch_add(timer.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
        });
    }
    // Iteratively merge neighbouring sorted runs. The merge passes are
    // sequential (there are only log2(threads) of them and they are
    // memory-bandwidth bound); each pass copies the current contents once.
    let merge_timer = Instant::now();
    let mut run = chunk;
    while run < n {
        let src = items.to_vec();
        let mut start = 0;
        while start < n {
            let mid = (start + run).min(n);
            let end = (start + 2 * run).min(n);
            merge_by_key(
                &src[start..mid],
                &src[mid..end],
                &mut items[start..end],
                &key,
            );
            start = end;
        }
        run *= 2;
    }
    busy_nanos.load(Ordering::Relaxed) as f64 / 1e6 + merge_timer.elapsed().as_secs_f64() * 1e3
}

fn merge_by_key<T: Clone, K: Ord, F: Fn(&T) -> K>(a: &[T], b: &[T], out: &mut [T], key: &F) {
    let (mut i, mut j, mut k) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        if key(&a[i]) <= key(&b[j]) {
            out[k] = a[i].clone();
            i += 1;
        } else {
            out[k] = b[j].clone();
            j += 1;
        }
        k += 1;
    }
    while i < a.len() {
        out[k] = a[i].clone();
        i += 1;
        k += 1;
    }
    while j < b.len() {
        out[k] = b[j].clone();
        j += 1;
        k += 1;
    }
}

/// A raw pointer wrapper that asserts Send/Sync so disjoint-index writes can
/// cross the scoped-thread boundary. All uses in this crate guarantee each
/// element is written by at most one thread.
struct SendPtr<T>(*mut T);
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn chunks_cover_every_index_once() {
        let n = 100_000;
        let hits = (0..n).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
        par_for_chunks(n, 128, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn empty_and_tiny_inputs() {
        par_for_chunks(0, 16, |_| panic!("no chunks expected"));
        let seen = AtomicUsize::new(0);
        par_for_chunks(1, 16, |r| {
            assert_eq!(r, 0..1);
            seen.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), 1);
        assert!(par_map(0, |i| i).is_empty());
    }

    #[test]
    fn par_map_matches_sequential() {
        let n = 50_000;
        let par = par_map(n, |i| (i * i) as u64);
        let seq: Vec<u64> = (0..n).map(|i| (i * i) as u64).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn par_map_slice_matches() {
        let data: Vec<i64> = (0..30_000).map(|i| i - 15_000).collect();
        let out = par_map_slice(&data, |&x| x.abs());
        assert_eq!(out, data.iter().map(|x| x.abs()).collect::<Vec<_>>());
    }

    #[test]
    fn reduce_sums_correctly() {
        let n = 100_000u64;
        let total = par_reduce(
            n as usize,
            128,
            0u64,
            |range| range.map(|i| i as u64).sum::<u64>(),
            |a, b| a + b,
        );
        assert_eq!(total, n * (n - 1) / 2);
        assert_eq!(par_reduce(0, 1, 7u64, |_| 0, |a, b| a + b), 7);
    }

    #[test]
    fn sort_by_key_sorts_large_inputs() {
        let n = 200_000;
        let mut data: Vec<u64> = (0..n)
            .map(|i| ((i as u64).wrapping_mul(0x9E3779B97F4A7C15)) >> 17)
            .collect();
        let mut expected = data.clone();
        expected.sort();
        par_sort_by_key(&mut data, |&x| x);
        assert_eq!(data, expected);
    }

    #[test]
    fn sort_by_key_is_correct_on_small_inputs() {
        let mut v = vec![5u32, 1, 4, 2, 3];
        par_sort_by_key(&mut v, |&x| x);
        assert_eq!(v, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn for_each_mut_visits_every_element_once() {
        let mut items: Vec<u64> = (0..500).collect();
        par_for_each_mut(&mut items, |i, item| {
            assert_eq!(*item, i as u64);
            *item += 1_000;
        });
        assert!(items
            .iter()
            .enumerate()
            .all(|(i, &v)| v == i as u64 + 1_000));
        // Empty and single-element inputs take the sequential path.
        let mut empty: Vec<u64> = Vec::new();
        par_for_each_mut(&mut empty, |_, _| panic!("no elements expected"));
        let mut one = vec![7u64];
        par_for_each_mut(&mut one, |i, item| *item += i as u64 + 1);
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn map_collect_matches_sequential_at_every_thread_count() {
        // The element type is neither Default nor Clone — the bound par_map
        // cannot satisfy.
        struct Opaque(String);
        for threads in [1, 2, 5] {
            let out = with_thread_count(threads, || {
                par_map_collect(1000, |i| Opaque(format!("item-{i}")))
            });
            assert_eq!(out.len(), 1000);
            assert!(out
                .iter()
                .enumerate()
                .all(|(i, o)| o.0 == format!("item-{i}")));
        }
        assert!(par_map_collect(0, |i| i).is_empty());
        assert_eq!(par_map_collect(1, |i| i + 41), vec![41]);
    }

    #[test]
    fn map_collect_mut_visits_once_and_collects_in_order() {
        for threads in [1, 3] {
            let mut items: Vec<u64> = (0..300).collect();
            let out = with_thread_count(threads, || {
                par_map_collect_mut(&mut items, |i, item| {
                    assert_eq!(*item, i as u64);
                    *item += 1_000;
                    Box::new(i as u64) // non-Default, non-Clone result
                })
            });
            assert!(items
                .iter()
                .enumerate()
                .all(|(i, &v)| v == i as u64 + 1_000));
            assert!(out.iter().enumerate().all(|(i, b)| **b == i as u64));
        }
        let mut empty: Vec<u64> = Vec::new();
        let out = par_map_collect_mut(&mut empty, |_, _| 0u8);
        assert!(out.is_empty());
    }

    #[test]
    fn chunks_mut_covers_the_slice_and_reports_busy_time() {
        let n = 50_000;
        let mut items: Vec<u64> = vec![0; n];
        let busy_ms = par_chunks_mut(&mut items, 64, |start, chunk| {
            for (off, item) in chunk.iter_mut().enumerate() {
                *item = (start + off) as u64 * 3;
            }
        });
        assert!(items.iter().enumerate().all(|(i, &v)| v == i as u64 * 3));
        assert!(busy_ms >= 0.0);
        let mut empty: Vec<u64> = Vec::new();
        assert_eq!(
            par_chunks_mut(&mut empty, 16, |_, _| panic!("no chunks")),
            0.0
        );
    }

    #[test]
    fn sort_returns_busy_time_and_is_thread_count_invariant() {
        let make = |n: usize| -> Vec<(u64, u32)> {
            (0..n)
                .map(|i| {
                    (
                        ((i as u64).wrapping_mul(0x9E3779B97F4A7C15)) >> 40,
                        i as u32,
                    )
                })
                .collect()
        };
        // Keys collide heavily; the (key, id) compound key is unique, so the
        // permutation must not depend on the thread count.
        let mut reference = make(30_000);
        reference.sort_by_key(|&(k, id)| (k, id));
        for threads in [1, 2, 7] {
            let mut data = make(30_000);
            let busy =
                with_thread_count(threads, || par_sort_by_key(&mut data, |&(k, id)| (k, id)));
            assert_eq!(data, reference, "threads={threads}");
            assert!(busy >= 0.0);
        }
    }

    #[test]
    fn reduce_runs_work_in_parallel_threads() {
        // Not a strict parallelism assertion (machine may have 1 CPU), just a
        // smoke test that the atomic accumulation path is exercised.
        let counter = AtomicU64::new(0);
        par_for_chunks(10_000, 64, |range| {
            counter.fetch_add(range.len() as u64, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 10_000);
    }
}
