//! Thread-count configuration for the workspace.
//!
//! The simulator and the host-side algorithms both use
//! [`current_num_threads`] worker threads. The default is the machine's
//! available parallelism; tests and benchmarks that need determinism in
//! timing-sensitive assertions can pin it with [`set_num_threads`] (results
//! are deterministic regardless — only wall-clock time changes).

use std::sync::atomic::{AtomicUsize, Ordering};

static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Number of worker threads used by the `par_*` helpers. Defaults to
/// `std::thread::available_parallelism()`, clamped to at least 1.
pub fn current_num_threads() -> usize {
    let configured = NUM_THREADS.load(Ordering::Relaxed);
    if configured > 0 {
        return configured;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Override the number of worker threads for the whole process. Passing 0
/// restores the default (machine parallelism).
pub fn set_num_threads(n: usize) {
    NUM_THREADS.store(n, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_at_least_one() {
        set_num_threads(0);
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn override_round_trips() {
        set_num_threads(3);
        assert_eq!(current_num_threads(), 3);
        set_num_threads(0);
        assert!(current_num_threads() >= 1);
    }
}
