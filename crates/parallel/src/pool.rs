//! Thread-count configuration for the workspace.
//!
//! The simulator and the host-side algorithms both use
//! [`current_num_threads`] worker threads. The default is the machine's
//! available parallelism; tests and benchmarks that need determinism in
//! timing-sensitive assertions can pin it with [`set_num_threads`] (results
//! are deterministic regardless — only wall-clock time changes), and code
//! that must not race the process-global setting (a thread-sweep benchmark,
//! a test harness running cases concurrently) can scope an override to the
//! calling thread with [`with_thread_count`].

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static LOCAL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads used by the `par_*` helpers. Defaults to
/// `std::thread::available_parallelism()`, clamped to at least 1. A
/// [`with_thread_count`] scope on the calling thread takes precedence over
/// the process-global [`set_num_threads`] value.
pub fn current_num_threads() -> usize {
    let local = LOCAL_THREADS.with(|c| c.get());
    if local > 0 {
        return local;
    }
    let configured = NUM_THREADS.load(Ordering::Relaxed);
    if configured > 0 {
        return configured;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Override the number of worker threads for the whole process. Passing 0
/// restores the default (machine parallelism).
pub fn set_num_threads(n: usize) {
    NUM_THREADS.store(n, Ordering::Relaxed);
    if let Some(t) = rtnn_telemetry::Telemetry::current() {
        t.gauge_set("parallel.threads", current_num_threads() as f64);
    }
}

/// Run `f` with the worker-thread count pinned to `n` on the *calling
/// thread only* (`n = 0` re-exposes the global/default). Nestable and
/// panic-safe; unlike [`set_num_threads`] it cannot race other threads, so
/// concurrent callers (a thread-sweep bench, parallel test cases) can each
/// pin their own width. Note the override applies to `par_*` calls made by
/// this thread — worker threads spawned inside those calls see the global
/// setting if they start nested parallel sections of their own.
pub fn with_thread_count<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            LOCAL_THREADS.with(|c| c.set(self.0));
        }
    }
    let prev = LOCAL_THREADS.with(|c| c.replace(n));
    let _restore = Restore(prev);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_at_least_one() {
        set_num_threads(0);
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn override_round_trips() {
        set_num_threads(3);
        assert_eq!(current_num_threads(), 3);
        set_num_threads(0);
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn scoped_override_beats_the_global_and_restores() {
        let outside = current_num_threads();
        let inner = with_thread_count(2, || {
            let mid = current_num_threads();
            // Nested scopes stack; 0 re-exposes the outer default.
            assert_eq!(with_thread_count(5, current_num_threads), 5);
            assert_eq!(with_thread_count(0, current_num_threads), outside);
            mid
        });
        assert_eq!(inner, 2);
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn scoped_override_is_restored_on_panic() {
        let before = current_num_threads();
        let caught = std::panic::catch_unwind(|| {
            with_thread_count(7, || panic!("boom"));
        });
        assert!(caught.is_err());
        assert_eq!(current_num_threads(), before);
    }
}
