//! A small disjoint-set (union-find) forest.
//!
//! Used by `rtnn-analytics` to merge DBSCAN core-point neighborhoods into
//! clusters. Path compression plus union by size gives the usual
//! near-constant amortised operations; the structure can [`grow`] so
//! streaming workloads whose id space expands frame over frame (dynamic
//! scene inserts) reuse one instance.
//!
//! Determinism note: *which* element ends up as the internal root of a
//! merged set depends on union order, so callers that need canonical labels
//! must derive them from set membership (e.g. the smallest member id), not
//! from [`find`] roots. [`UnionFind::min_labels`] does exactly that.
//!
//! [`grow`]: UnionFind::grow
//! [`find`]: UnionFind::find

/// A disjoint-set forest over the ids `0..len`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    /// Parent pointer per element; roots point at themselves.
    parent: Vec<u32>,
    /// Set size per element (meaningful at roots only).
    size: Vec<u32>,
}

impl UnionFind {
    /// A forest of `n` singleton sets.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "UnionFind ids are u32");
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Number of elements (not sets) in the forest.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the forest holds no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Extend the id space to `n` elements (no-op if already at least that
    /// large); new elements start as singletons.
    pub fn grow(&mut self, n: usize) {
        assert!(n <= u32::MAX as usize, "UnionFind ids are u32");
        for id in self.parent.len() as u32..n as u32 {
            self.parent.push(id);
            self.size.push(1);
        }
    }

    /// The root representative of `x`'s set, with path compression.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Compress the walked path.
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Merge the sets holding `a` and `b`; returns `true` if they were
    /// previously distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        // Union by size keeps trees shallow.
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same_set(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// The canonical label of every element: the smallest member id of its
    /// set. Unlike raw [`find`](Self::find) roots, these labels do not
    /// depend on the order unions were performed in.
    pub fn min_labels(&mut self) -> Vec<u32> {
        let n = self.parent.len();
        let mut min_of_root: Vec<u32> = (0..n as u32).collect();
        for x in 0..n as u32 {
            let root = self.find(x);
            if x < min_of_root[root as usize] {
                min_of_root[root as usize] = x;
            }
        }
        (0..n as u32)
            .map(|x| min_of_root[self.find(x) as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_their_own_roots() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.len(), 5);
        assert!(!uf.is_empty());
        for x in 0..5 {
            assert_eq!(uf.find(x), x);
        }
        assert!(UnionFind::new(0).is_empty());
    }

    #[test]
    fn union_merges_and_reports_novelty() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0), "already merged");
        assert!(uf.same_set(0, 1));
        assert!(!uf.same_set(1, 2));
        assert!(uf.union(1, 3));
        assert!(uf.same_set(0, 2));
        assert!(!uf.same_set(0, 5));
    }

    #[test]
    fn min_labels_are_union_order_invariant() {
        // Two different union orders over the same set partition must give
        // identical labels.
        let mut a = UnionFind::new(7);
        a.union(4, 2);
        a.union(2, 6);
        a.union(1, 5);
        let mut b = UnionFind::new(7);
        b.union(6, 4);
        b.union(5, 1);
        b.union(4, 2);
        let (la, lb) = (a.min_labels(), b.min_labels());
        assert_eq!(la, lb);
        assert_eq!(la, vec![0, 1, 2, 3, 2, 1, 2]);
    }

    #[test]
    fn grow_adds_singletons_and_preserves_sets() {
        let mut uf = UnionFind::new(3);
        uf.union(0, 2);
        uf.grow(6);
        assert_eq!(uf.len(), 6);
        assert!(uf.same_set(0, 2));
        for x in 3..6 {
            assert_eq!(uf.find(x), x);
        }
        uf.grow(2); // shrinking is a no-op
        assert_eq!(uf.len(), 6);
        assert!(uf.union(5, 0));
        assert_eq!(uf.min_labels()[5], 0);
    }

    #[test]
    fn deep_chains_compress() {
        let n = 10_000;
        let mut uf = UnionFind::new(n);
        for x in 1..n as u32 {
            uf.union(x - 1, x);
        }
        let labels = uf.min_labels();
        assert!(labels.iter().all(|&l| l == 0));
    }
}
