//! Request coalescing: fuse whatever is in flight into one heterogeneous
//! `QueryPlan::Batch`, execute it once, and scatter the per-request
//! responses back out.
//!
//! RTNN's central lesson is that throughput comes from aggregating queries
//! *before* touching the accelerator: a fused tick pays one data transfer,
//! one shared first-hit scheduling pass and one megacell partitioning per
//! merged parameter set, where per-request execution pays all of them per
//! request. The fusion is pure bookkeeping — concatenate the request query
//! arrays, offset each request's plan slices into the concatenated id
//! space, and [`QueryPlan::normalized`] merges slices that share identical
//! parameters across requests — so the per-request results are bit-equal
//! to direct `Index::query` calls (see `tests/serve_determinism.rs`).

use crate::request::Request;
use rtnn::engine::SearchError;
use rtnn::{
    AutoTuner, CostCoefficients, PlanSlice, QueryPlan, SearchResults, StageOverrides, TunerDecision,
};
use rtnn_math::Vec3;

/// Anything that can execute one tick's fused plan: an `rtnn::Index`, a
/// [`ShardedIndex`](crate::ShardedIndex), or a test double.
pub trait TickExecutor {
    /// Answer `plan` for `queries` (the `Index::query` contract).
    fn execute(&mut self, queries: &[Vec3], plan: &QueryPlan)
        -> Result<SearchResults, SearchError>;

    /// [`execute`](Self::execute) with per-call pipeline
    /// [`StageOverrides`] — the hook adaptive tuning drives. The default
    /// ignores the overrides and executes plainly, so test doubles and
    /// executors without a staged pipeline stay correct (overrides only
    /// ever change *how* a tick runs, never its results).
    fn execute_with(
        &mut self,
        queries: &[Vec3],
        plan: &QueryPlan,
        overrides: StageOverrides<'_>,
    ) -> Result<SearchResults, SearchError> {
        let _ = overrides;
        self.execute(queries, plan)
    }

    /// The `(points, backend)` coordinates an [`AutoTuner`] keys its
    /// per-signature state on, or `None` for executors that cannot be
    /// tuned (the default — [`execute_tick_tuned`] then runs the plain
    /// path).
    fn tuner_signature(&self) -> Option<(usize, &'static str)> {
        None
    }

    /// Cost coefficients calibrated for this executor's device, used to
    /// seed a tuner that arrives without a cost model (the default `None`
    /// leaves the tuner's cold start on the built-in fallback).
    fn calibrated_cost(&self) -> Option<CostCoefficients> {
        None
    }

    /// The shard skew of the most recent execution — critical path over
    /// ideal parallel time, the [`ShardTiming::skew`](crate::ShardTiming::skew)
    /// signal — or 0.0 for unsharded executors (the default). The SLO
    /// flight recorder stamps this onto every request trace so a pinned
    /// tail-latency exemplar says whether a hot shard was involved.
    fn last_shard_skew(&self) -> f64 {
        0.0
    }
}

impl TickExecutor for rtnn::Index<'_> {
    fn execute(
        &mut self,
        queries: &[Vec3],
        plan: &QueryPlan,
    ) -> Result<SearchResults, SearchError> {
        self.query(queries, plan)
    }

    fn execute_with(
        &mut self,
        queries: &[Vec3],
        plan: &QueryPlan,
        overrides: StageOverrides<'_>,
    ) -> Result<SearchResults, SearchError> {
        self.query_with(queries, plan, overrides)
    }

    fn tuner_signature(&self) -> Option<(usize, &'static str)> {
        Some((self.points().len(), self.backend().name()))
    }

    fn calibrated_cost(&self) -> Option<CostCoefficients> {
        Some(CostCoefficients::calibrate(self.backend().device()))
    }
}

/// What one fused tick did (reported into the service stats and the load
/// harness).
#[derive(Debug, Clone, Copy, Default)]
pub struct TickOutcome {
    /// Requests fused into the tick.
    pub requests: usize,
    /// Total queries launched.
    pub queries: usize,
    /// Simulated milliseconds of the tick's execution.
    pub sim_ms: f64,
    /// Per-stage `(label, device_ms)` breakdown of the tick's pipeline
    /// execution, in pipeline order (empty labels when nothing launched) —
    /// what the flight recorder attributes a slow request to.
    pub stage_device_ms: [(&'static str, f64); 4],
    /// The auto-tuner's decision for this tick (`None` when the tick ran
    /// untuned): one decision per fused batch, taken *before* the launch
    /// and recorded here so the serving layer can report which ladder rung
    /// each tick actually executed at.
    pub tuned: Option<TunerDecision>,
}

/// The outcome of one request within a tick: its per-query neighbor lists
/// or the error that failed it.
pub type RequestOutcome = Result<Vec<Vec<u32>>, SearchError>;

/// Execute one tick over `requests`: validate each request individually
/// (an invalid plan fails only its own request), fuse the valid ones into
/// one batch, execute it, and scatter per-request neighbor lists.
///
/// Returns one outcome per request, index-aligned with `requests`, plus
/// the tick summary.
pub fn execute_tick<E: TickExecutor>(
    executor: &mut E,
    requests: &[&Request],
) -> (Vec<RequestOutcome>, TickOutcome) {
    execute_tick_tuned(executor, requests, None)
}

/// One tick's decide → execute → observe round-trip: ask the tuner for
/// the tick's ladder rung (lazily handing it the executor's calibrated
/// cost model), run the fused plan under the decided overrides, and fold
/// the measured stage timings back in on success.
fn tuned_execute<E: TickExecutor>(
    executor: &mut E,
    tuner: &mut Option<&mut AutoTuner>,
    queries: &[Vec3],
    plan: &QueryPlan,
) -> (Option<TunerDecision>, Result<SearchResults, SearchError>) {
    let decision = tuner.as_deref_mut().and_then(|t| {
        let (points, backend) = executor.tuner_signature()?;
        if !t.has_cost_model() {
            if let Some(cost) = executor.calibrated_cost() {
                t.set_cost_model(cost);
            }
        }
        let d = t.decide(plan.kind_label(), points, backend, queries.len());
        Some((d, points, backend))
    });
    match decision {
        Some((d, points, backend)) => {
            let result = executor.execute_with(queries, plan, d.overrides());
            if let (Ok(results), Some(t)) = (&result, tuner.as_deref_mut()) {
                t.observe(
                    plan.kind_label(),
                    points,
                    backend,
                    d.level,
                    &results.trace.stage_device_ms(),
                    // Structure builds are one-time costs billed to the
                    // Launch slot; exclude them so arms compete on the
                    // steady-state tick cost.
                    results.breakdown.bvh_ms,
                );
            }
            (Some(d), result)
        }
        None => (None, executor.execute(queries, plan)),
    }
}

/// [`execute_tick`] with an optional [`AutoTuner`] steering the tick's
/// pipeline stages: **one decision per fused batch** — the tuner is
/// consulted once, right before the tick's single launch, with the
/// actually-executed plan's kind and query count — and the decision is
/// recorded on the returned [`TickOutcome::tuned`]. Ticks that never
/// launch (all requests invalid or empty), and executors that expose no
/// [`tuner_signature`](TickExecutor::tuner_signature), leave the tuner
/// untouched.
pub fn execute_tick_tuned<E: TickExecutor>(
    executor: &mut E,
    requests: &[&Request],
    mut tuner: Option<&mut AutoTuner>,
) -> (Vec<RequestOutcome>, TickOutcome) {
    let mut outcomes: Vec<Option<RequestOutcome>> = vec![None; requests.len()];

    // Per-request validation: a malformed plan must not poison the tick.
    // Each plan is normalized exactly once here; the fusion loop below
    // reuses the (usually borrowed) result.
    let mut valid: Vec<usize> = Vec::with_capacity(requests.len());
    let mut normalized: Vec<Option<std::borrow::Cow<'_, QueryPlan>>> =
        Vec::with_capacity(requests.len());
    for (ri, req) in requests.iter().enumerate() {
        let plan = req.plan.normalized();
        match plan.validate(req.queries.len()) {
            Ok(()) => {
                valid.push(ri);
                normalized.push(Some(plan));
            }
            Err(e) => {
                outcomes[ri] = Some(Err(SearchError::InvalidPlan(e)));
                normalized.push(None);
            }
        }
    }

    let mut tick = TickOutcome {
        requests: valid.len(),
        ..TickOutcome::default()
    };

    // Single-request ticks pass through untouched — the one-request-per-
    // call baseline, and trivially bit-equal to a direct query.
    if valid.len() == 1 {
        let ri = valid[0];
        let req = requests[ri];
        tick.queries = req.queries.len();
        let (tuned, result) = tuned_execute(executor, &mut tuner, &req.queries, &req.plan);
        tick.tuned = tuned;
        match result {
            Ok(results) => {
                tick.sim_ms = results.total_time_ms();
                tick.stage_device_ms = results.trace.stage_device_ms();
                outcomes[ri] = Some(Ok(results.neighbors));
            }
            Err(e) => outcomes[ri] = Some(Err(e)),
        }
        return (finish(outcomes), tick);
    }

    if !valid.is_empty() {
        // Fuse: concatenate query arrays, offset every slice into the
        // concatenated id space.
        let mut queries: Vec<Vec3> = Vec::new();
        let mut slices: Vec<PlanSlice> = Vec::new();
        let mut spans: Vec<(usize, usize)> = Vec::with_capacity(valid.len());
        for &ri in &valid {
            let req = requests[ri];
            let offset = queries.len() as u32;
            queries.extend_from_slice(&req.queries);
            spans.push((offset as usize, req.queries.len()));
            match normalized[ri]
                .as_deref()
                .expect("valid requests kept their plan")
            {
                QueryPlan::Batch(request_slices) => {
                    for s in request_slices {
                        slices.push(PlanSlice::new(
                            s.plan.clone(),
                            s.query_ids.iter().map(|&q| q + offset).collect(),
                        ));
                    }
                }
                single => {
                    let n = req.queries.len() as u32;
                    slices.push(PlanSlice::new(
                        single.clone(),
                        (offset..offset + n).collect(),
                    ));
                }
            }
        }
        tick.queries = queries.len();

        if slices.is_empty() || queries.is_empty() {
            // Nothing to launch (all fused requests were empty): every
            // request gets its (empty) per-query lists back.
            for (vi, &ri) in valid.iter().enumerate() {
                outcomes[ri] = Some(Ok(vec![Vec::new(); spans[vi].1]));
            }
            return (finish(outcomes), tick);
        }

        // One fused plan for the tick; `normalized` merges slices with
        // identical parameters across requests.
        let plan = QueryPlan::Batch(slices).normalized().into_owned();
        let (tuned, result) = tuned_execute(executor, &mut tuner, &queries, &plan);
        tick.tuned = tuned;
        match result {
            Ok(results) => {
                tick.sim_ms = results.total_time_ms();
                tick.stage_device_ms = results.trace.stage_device_ms();
                for (vi, &ri) in valid.iter().enumerate() {
                    let (offset, len) = spans[vi];
                    outcomes[ri] = Some(Ok(results.neighbors[offset..offset + len].to_vec()));
                }
            }
            Err(e) => {
                // An execution-level failure (device OOM) fails the whole
                // tick: every fused request learns about it.
                for &ri in &valid {
                    outcomes[ri] = Some(Err(e.clone()));
                }
            }
        }
    }

    (finish(outcomes), tick)
}

fn finish(outcomes: Vec<Option<RequestOutcome>>) -> Vec<RequestOutcome> {
    outcomes
        .into_iter()
        .map(|o| o.expect("every request received an outcome"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtnn::{PlanError, QueryPlan};

    /// A scripted executor that records the calls it receives and answers
    /// every query with a single-id list equal to its position.
    struct Recorder {
        calls: Vec<(usize, QueryPlan)>,
    }

    impl TickExecutor for Recorder {
        fn execute(
            &mut self,
            queries: &[Vec3],
            plan: &QueryPlan,
        ) -> Result<SearchResults, SearchError> {
            self.calls.push((queries.len(), plan.clone()));
            Ok(SearchResults {
                neighbors: (0..queries.len() as u32).map(|i| vec![i]).collect(),
                breakdown: Default::default(),
                search_metrics: Default::default(),
                fs_metrics: Default::default(),
                num_partitions: 1,
                num_bundles: 1,
                trace: Default::default(),
            })
        }
    }

    fn q(n: usize) -> Vec<Vec3> {
        (0..n).map(|i| Vec3::splat(i as f32)).collect()
    }

    #[test]
    fn single_request_passes_through() {
        let mut exec = Recorder { calls: Vec::new() };
        let req = Request::new(q(3), QueryPlan::knn(1.0, 4));
        let (outcomes, tick) = execute_tick(&mut exec, &[&req]);
        assert_eq!(tick.requests, 1);
        assert_eq!(tick.queries, 3);
        assert_eq!(outcomes[0].as_ref().unwrap().len(), 3);
        assert_eq!(exec.calls.len(), 1);
        assert_eq!(exec.calls[0].1, QueryPlan::knn(1.0, 4), "no batch wrapper");
    }

    #[test]
    fn fused_tick_merges_identical_params_and_scatters_by_span() {
        let mut exec = Recorder { calls: Vec::new() };
        let a = Request::new(q(2), QueryPlan::knn(1.0, 4));
        let b = Request::new(q(3), QueryPlan::range(2.0, 8));
        let c = Request::new(q(1), QueryPlan::knn(1.0, 4));
        let (outcomes, tick) = execute_tick(&mut exec, &[&a, &b, &c]);
        assert_eq!(tick.requests, 3);
        assert_eq!(tick.queries, 6);
        // One fused call with two merged slices (a and c share params).
        assert_eq!(exec.calls.len(), 1);
        let QueryPlan::Batch(slices) = &exec.calls[0].1 else {
            panic!("fused tick executes a batch");
        };
        assert_eq!(slices.len(), 2);
        assert_eq!(slices[0].query_ids, vec![0, 1, 5], "a's ids then c's id");
        assert_eq!(slices[1].query_ids, vec![2, 3, 4]);
        // Scatter: each request sees exactly its own span.
        assert_eq!(outcomes[0].as_ref().unwrap(), &vec![vec![0], vec![1]]);
        assert_eq!(
            outcomes[1].as_ref().unwrap(),
            &vec![vec![2], vec![3], vec![4]]
        );
        assert_eq!(outcomes[2].as_ref().unwrap(), &vec![vec![5]]);
    }

    #[test]
    fn request_batches_are_flattened_into_the_tick() {
        let mut exec = Recorder { calls: Vec::new() };
        let a = Request::new(
            q(2),
            QueryPlan::Batch(vec![
                PlanSlice::new(QueryPlan::knn(1.0, 2), vec![0]),
                PlanSlice::new(QueryPlan::range(3.0, 4), vec![1]),
            ]),
        );
        let b = Request::new(q(1), QueryPlan::range(3.0, 4));
        let (outcomes, _) = execute_tick(&mut exec, &[&a, &b]);
        let QueryPlan::Batch(slices) = &exec.calls[0].1 else {
            panic!("batch expected");
        };
        assert_eq!(slices.len(), 2);
        assert_eq!(slices[1].query_ids, vec![1, 2], "range ids of a then b");
        assert!(outcomes.iter().all(|o| o.is_ok()));
    }

    #[test]
    fn invalid_requests_fail_alone() {
        let mut exec = Recorder { calls: Vec::new() };
        let good = Request::new(q(2), QueryPlan::knn(1.0, 4));
        let bad = Request::new(q(2), QueryPlan::knn(-1.0, 4));
        let (outcomes, tick) = execute_tick(&mut exec, &[&good, &bad]);
        assert_eq!(tick.requests, 1, "only the valid request executes");
        assert!(outcomes[0].is_ok());
        assert_eq!(
            outcomes[1].as_ref().unwrap_err(),
            &SearchError::InvalidPlan(PlanError::InvalidRadius {
                field: "Knn.r",
                value: -1.0
            })
        );
    }

    #[test]
    fn untunable_executors_leave_the_tuner_untouched() {
        // The Recorder exposes no tuner signature, so a tuned tick runs
        // the plain path: no decision is taken, none is recorded.
        let mut exec = Recorder { calls: Vec::new() };
        let mut tuner = AutoTuner::new(7);
        let a = Request::new(q(2), QueryPlan::knn(1.0, 4));
        let b = Request::new(q(3), QueryPlan::range(2.0, 8));
        let (outcomes, tick) = execute_tick_tuned(&mut exec, &[&a, &b], Some(&mut tuner));
        assert!(outcomes.iter().all(|o| o.is_ok()));
        assert!(tick.tuned.is_none());
        assert_eq!(tuner.decisions(), 0, "the tuner was never consulted");
        assert_eq!(exec.calls.len(), 1, "the tick still executed");
    }

    #[test]
    fn empty_requests_get_empty_responses_without_a_launch() {
        let mut exec = Recorder { calls: Vec::new() };
        let a = Request::new(Vec::new(), QueryPlan::knn(1.0, 4));
        let b = Request::new(Vec::new(), QueryPlan::range(1.0, 4));
        let (outcomes, _) = execute_tick(&mut exec, &[&a, &b]);
        assert!(exec.calls.is_empty(), "nothing to launch");
        assert!(outcomes.iter().all(|o| o.as_ref().unwrap().is_empty()));
    }
}
