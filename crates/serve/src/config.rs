//! Service configuration, overridable from the environment.
//!
//! Mirrors the `RTNN_SCALE` pattern of `rtnn-bench`: unset variables fall
//! back to the defaults, set-but-invalid variables are a configuration
//! error reported with a clear message instead of silently serving at the
//! wrong settings. The parsing core ([`ServeConfig::from_vars`]) takes an
//! injectable variable source so it is unit-testable without touching the
//! process environment.

/// Tuning of one [`QueryService`](crate::QueryService).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads available to the service (shard fan-out and the
    /// engine's internal kernels). Applied with
    /// [`apply_thread_limit`](Self::apply_thread_limit); `0` keeps the
    /// machine default.
    pub threads: usize,
    /// Coalescing window in microseconds: after the first request of a tick
    /// arrives, the dispatcher keeps draining requests for this long before
    /// executing the fused batch. Longer windows trade per-request latency
    /// for throughput (bigger batches amortise more shared work).
    pub window_us: u64,
    /// Whether in-flight requests are coalesced at all. With coalescing off
    /// every tick executes exactly one request — the one-request-per-call
    /// baseline the `fig_serve` experiment compares against.
    pub coalescing: bool,
    /// Upper bound on the number of requests fused into one tick.
    pub max_batch: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: 0,
            window_us: 200,
            coalescing: true,
            max_batch: 64,
        }
    }
}

impl ServeConfig {
    /// Read overrides from the environment (`RTNN_SERVE_THREADS`,
    /// `RTNN_SERVE_WINDOW_US`), falling back to the defaults for unset
    /// variables. A variable that is set but not a positive integer is a
    /// configuration error: the process exits with a clear message instead
    /// of silently serving at the wrong settings.
    pub fn from_env() -> Self {
        match Self::from_vars(|name| std::env::var(name).ok()) {
            Ok(c) => c,
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        }
    }

    /// [`Self::from_env`] with an injectable variable source (testable).
    pub fn from_vars(get: impl Fn(&str) -> Option<String>) -> Result<Self, String> {
        let mut c = ServeConfig::default();
        if let Some(v) = parse_serve_var("RTNN_SERVE_THREADS", get("RTNN_SERVE_THREADS"))? {
            c.threads = v as usize;
        }
        if let Some(v) = parse_serve_var("RTNN_SERVE_WINDOW_US", get("RTNN_SERVE_WINDOW_US"))? {
            c.window_us = v;
        }
        Ok(c)
    }

    /// Disable coalescing (one request per tick).
    pub fn without_coalescing(mut self) -> Self {
        self.coalescing = false;
        self
    }

    /// Set the coalescing window.
    pub fn with_window_us(mut self, window_us: u64) -> Self {
        self.window_us = window_us;
        self
    }

    /// Set the per-tick request cap.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Apply the thread limit to the workspace pool (`rtnn-parallel`), if
    /// one was configured. Explicitly opt-in because the pool width is
    /// process-global: binaries (the `query_server` example, the
    /// `fig_serve` bench) call this once at startup.
    pub fn apply_thread_limit(&self) {
        if self.threads > 0 {
            rtnn_parallel::set_num_threads(self.threads);
        }
    }

    /// The coalescing window as a [`std::time::Duration`].
    pub fn window(&self) -> std::time::Duration {
        std::time::Duration::from_micros(self.window_us)
    }
}

/// Parse one serve variable: `Ok(None)` when unset or empty, `Ok(Some(v))`
/// for a valid positive integer, and a descriptive error for zero, garbage,
/// negative or overflowing values.
fn parse_serve_var(name: &str, value: Option<String>) -> Result<Option<u64>, String> {
    let Some(raw) = value else {
        return Ok(None);
    };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    let parsed: u64 = trimmed.parse().map_err(|_| {
        format!("{name}={raw:?} is not a positive integer (unset it to use the default)")
    })?;
    if parsed == 0 {
        return Err(format!(
            "{name}=0 is not allowed: the value must be at least 1 (unset it to use the default)"
        ));
    }
    Ok(Some(parsed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ServeConfig::default();
        assert!(c.coalescing);
        assert!(c.window_us >= 1);
        assert!(c.max_batch >= 1);
        assert_eq!(c.threads, 0, "default keeps the machine thread count");
    }

    #[test]
    fn valid_variables_override_the_defaults() {
        let c = ServeConfig::from_vars(|name| match name {
            "RTNN_SERVE_THREADS" => Some("3".to_string()),
            "RTNN_SERVE_WINDOW_US" => Some("750".to_string()),
            _ => None,
        })
        .unwrap();
        assert_eq!(c.threads, 3);
        assert_eq!(c.window_us, 750);
        assert_eq!(c.window(), std::time::Duration::from_micros(750));
    }

    #[test]
    fn unset_or_empty_variables_fall_back_to_defaults() {
        let c = ServeConfig::from_vars(|_| None).unwrap();
        assert_eq!(c, ServeConfig::default());
        let c = ServeConfig::from_vars(|n| (n == "RTNN_SERVE_WINDOW_US").then(|| "  ".to_string()))
            .unwrap();
        assert_eq!(c.window_us, ServeConfig::default().window_us);
    }

    #[test]
    fn zero_and_garbage_are_rejected_with_clear_errors() {
        for (name, bad) in [
            ("RTNN_SERVE_THREADS", "0"),
            ("RTNN_SERVE_THREADS", "many"),
            ("RTNN_SERVE_THREADS", "-2"),
            ("RTNN_SERVE_WINDOW_US", "0"),
            ("RTNN_SERVE_WINDOW_US", "1.5"),
            ("RTNN_SERVE_WINDOW_US", "soon"),
        ] {
            let err = ServeConfig::from_vars(|n| (n == name).then(|| bad.to_string())).unwrap_err();
            assert!(
                err.contains(name),
                "error for {name}={bad} must name the variable: {err}"
            );
            assert!(
                err.contains("default"),
                "error must mention the fallback: {err}"
            );
        }
    }

    #[test]
    fn builder_helpers() {
        let c = ServeConfig::default()
            .without_coalescing()
            .with_window_us(5)
            .with_max_batch(0);
        assert!(!c.coalescing);
        assert_eq!(c.window_us, 5);
        assert_eq!(c.max_batch, 1, "max_batch clamps to at least 1");
    }
}
