//! # rtnn-serve
//!
//! A concurrent query-serving layer on top of the RTNN [`Index`]: many
//! small point-query requests in, large fused device launches out.
//!
//! RTNN's evaluation (and RT-kNNS Unbound after it) shows that neighbor-
//! search throughput is decided *before* the accelerator is touched — by
//! how queries are aggregated, scheduled and partitioned. The engine side
//! of that story landed with [`Index`]/`QueryPlan::Batch`: one call can
//! answer a heterogeneous batch with one shared scheduling pass and cached
//! structures. This crate supplies the missing traffic side:
//!
//! * **[`QueryService`]** — a channel-based dispatcher: any number of
//!   client threads submit [`Request`]s through a cloneable
//!   [`ServiceClient`]; the dispatcher coalesces whatever is in flight
//!   within a bounded window ([`ServeConfig::window_us`]) into a single
//!   fused `QueryPlan::Batch` per tick — merging slices with identical
//!   parameters via `QueryPlan::normalized` — executes it once, and
//!   scatters per-request responses with per-request and per-tick
//!   latency/throughput statistics ([`ServiceStats`]).
//! * **[`ShardedIndex`]** — spatial sharding: the points are split into
//!   contiguous Morton-curve ranges, one sub-index per shard, served by
//!   the `rtnn-parallel` worker pool. A router fans each query only to the
//!   shards its search sphere overlaps, and a deterministic merge
//!   (`rtnn::ShardMerge`) reassembles per-shard results into the exact
//!   bit-equal single-index answer.
//! * **[`loadgen`]** — a deterministic virtual-time load harness replaying
//!   the dispatcher policy on simulated milliseconds, so offered-load
//!   sweeps (`fig_serve`) are reproducible.
//!
//! Responses are **bit-equal to direct [`Index::query`] calls** regardless
//! of arrival order, coalescing window, worker thread count and shard
//! count — see `tests/serve_determinism.rs` at the workspace root for the
//! stress proof, and the `ShardMerge` docs for the precise conditions.
//!
//! [`Index`]: rtnn::Index
//! [`Index::query`]: rtnn::Index::query

pub mod coalesce;
pub mod config;
pub mod loadgen;
pub mod request;
pub mod service;
pub mod shard;
pub mod stats;

pub use coalesce::{execute_tick, execute_tick_tuned, RequestOutcome, TickExecutor, TickOutcome};
pub use config::ServeConfig;
pub use loadgen::{
    poisson_arrivals, run_virtual, run_virtual_observed, run_virtual_recorded, LoadReport,
};
pub use request::{Request, RequestStats, Response};
pub use service::{PendingResponse, QueryService, ServiceClient};
pub use shard::{ShardTiming, ShardedIndex};
pub use stats::{percentile, ServiceStats};
