//! Deterministic virtual-time load harness.
//!
//! The live [`QueryService`](crate::QueryService) coalesces on *wall*
//! time, so its batch compositions depend on scheduler jitter — fine for
//! serving, useless for a reproducible experiment. This module replays the
//! same dispatcher policy on a virtual clock: request arrivals are drawn
//! from a seeded exponential process, the coalescing window closes at
//! exact virtual instants, and each tick's cost is the *simulated* device
//! milliseconds the executor reports. Same seed, same executor → the same
//! ticks, latencies and throughput, on any machine. `fig_serve` sweeps
//! offered load through this harness.
//!
//! [`run_virtual_observed`] additionally attaches a private
//! [`Telemetry`] sink on the replay's [`VirtualClock`]: every span and
//! metric is stamped from the replayed schedule (wall-measured values are
//! dropped — see [`Telemetry::is_deterministic`]), so the returned
//! [`TelemetrySnapshot`] is itself bit-reproducible across machines and
//! thread counts.

use crate::coalesce::{execute_tick, TickExecutor, TickOutcome};
use crate::config::ServeConfig;
use crate::request::Request;
use crate::stats::ServiceStats;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rtnn_telemetry::{
    FlightRecorder, RequestTrace, SpanRecord, Telemetry, TelemetryLevel, TelemetrySnapshot,
    VirtualClock,
};
use std::sync::Arc;

/// The outcome of one virtual-time run.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Tick/throughput accounting (latencies in virtual milliseconds).
    pub stats: ServiceStats,
    /// Virtual milliseconds from the first arrival to the last departure.
    pub makespan_ms: f64,
    /// Requests completed per virtual second.
    pub achieved_qps: f64,
    /// Offered request rate (requests per virtual second).
    pub offered_qps: f64,
}

impl LoadReport {
    /// Latency percentile in virtual milliseconds.
    pub fn latency_ms(&self, q: f64) -> f64 {
        self.stats.latencies.percentile(q)
    }
}

/// Poisson-process arrival times (virtual ms) for `n` requests at
/// `offered_qps` requests per virtual second, deterministically from
/// `seed`.
pub fn poisson_arrivals(n: usize, offered_qps: f64, seed: u64) -> Vec<f64> {
    assert!(offered_qps > 0.0, "offered load must be positive");
    let mean_gap_ms = 1e3 / offered_qps;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut t = 0.0;
    (0..n)
        .map(|_| {
            // Inverse-CDF exponential; 1-u in (0,1] keeps ln finite.
            let u: f64 = rng.gen();
            t += -mean_gap_ms * (1.0 - u).ln();
            t
        })
        .collect()
}

/// Serve `requests` arriving at `arrivals_ms` (sorted, virtual ms) through
/// `executor` under the dispatcher policy of `config`, on a virtual clock.
///
/// The policy mirrors [`QueryService::run`](crate::QueryService::run): a
/// tick opens when the service is free and a request is waiting, stays
/// open for the coalescing window (batching every request that has arrived
/// by its close, up to `max_batch`) — closing early the moment the batch
/// is full, exactly like the live dispatcher — then executes; the next
/// tick cannot start before the previous one's simulated execution
/// finished. With coalescing off every tick serves exactly one request.
pub fn run_virtual<E: TickExecutor>(
    executor: &mut E,
    requests: &[Request],
    arrivals_ms: &[f64],
    config: &ServeConfig,
) -> LoadReport {
    replay(executor, requests, arrivals_ms, config, None, None)
}

/// [`run_virtual`] with a private telemetry sink on the replay's virtual
/// clock, recording at `level`: per-request spans (`serve.request.*`,
/// interval = arrival → departure), one `serve.tick` span per tick
/// (parented under the request that opened it, enclosing the executor's
/// own pipeline spans), per-plan-kind latency histograms
/// (`serve.latency.*`, virtual milliseconds), and the queue-depth /
/// coalescing-window gauges. Returns the report plus the frozen snapshot —
/// bit-deterministic for a given (requests, arrivals, config, executor).
pub fn run_virtual_observed<E: TickExecutor>(
    executor: &mut E,
    requests: &[Request],
    arrivals_ms: &[f64],
    config: &ServeConfig,
    level: TelemetryLevel,
) -> (LoadReport, TelemetrySnapshot) {
    let clock = Arc::new(VirtualClock::new());
    let telemetry = Telemetry::with_clock(level, clock.clone());
    let report = replay(
        executor,
        requests,
        arrivals_ms,
        config,
        Some(Observer {
            telemetry: &telemetry,
            clock: &clock,
        }),
        None,
    );
    let snapshot = telemetry.snapshot();
    (report, snapshot)
}

/// [`run_virtual_observed`] with an SLO flight recorder riding the replay:
/// every served request lands in `recorder` as a [`RequestTrace`] stamped
/// in virtual milliseconds (latency = arrival → departure, the tick's
/// stage breakdown and shard skew attached), so an attached
/// [`SloMonitor`](rtnn_telemetry::SloMonitor) judges the exact replayed
/// latency sequence. Same (requests, arrivals, config, executor, SLO) →
/// the same breach events and the same pinned exemplar traces, bit for
/// bit, on any machine — the property `tests/telemetry_equivalence.rs`
/// pins.
pub fn run_virtual_recorded<E: TickExecutor>(
    executor: &mut E,
    requests: &[Request],
    arrivals_ms: &[f64],
    config: &ServeConfig,
    level: TelemetryLevel,
    recorder: &mut FlightRecorder,
) -> (LoadReport, TelemetrySnapshot) {
    let clock = Arc::new(VirtualClock::new());
    let telemetry = Telemetry::with_clock(level, clock.clone());
    let report = replay(
        executor,
        requests,
        arrivals_ms,
        config,
        Some(Observer {
            telemetry: &telemetry,
            clock: &clock,
        }),
        Some(recorder),
    );
    let snapshot = telemetry.snapshot();
    (report, snapshot)
}

/// The observed replay's recording context: the sink plus the hand-advanced
/// clock it stamps from.
struct Observer<'a> {
    telemetry: &'a Arc<Telemetry>,
    clock: &'a Arc<VirtualClock>,
}

fn replay<E: TickExecutor>(
    executor: &mut E,
    requests: &[Request],
    arrivals_ms: &[f64],
    config: &ServeConfig,
    observer: Option<Observer<'_>>,
    mut flight: Option<&mut FlightRecorder>,
) -> LoadReport {
    assert_eq!(requests.len(), arrivals_ms.len());
    assert!(
        arrivals_ms.windows(2).all(|w| w[0] <= w[1]),
        "arrivals must be sorted"
    );
    let window_ms = if config.coalescing {
        config.window_us as f64 / 1e3
    } else {
        0.0
    };
    if let Some(obs) = &observer {
        obs.telemetry.gauge_set(
            "serve.coalescing_window_us",
            if config.coalescing {
                config.window_us as f64
            } else {
                0.0
            },
        );
    }

    let mut stats = ServiceStats::default();
    let mut free_at = 0.0f64;
    let mut last_departure = 0.0f64;
    let mut i = 0;
    while i < requests.len() {
        let open = free_at.max(arrivals_ms[i]);
        let close = open + window_ms;
        let mut j = i + 1;
        if config.coalescing {
            while j < requests.len() && arrivals_ms[j] <= close && j - i < config.max_batch {
                j += 1;
            }
        }
        // The window closes early once the batch is full (the live
        // dispatcher stops draining at max_batch and executes right away);
        // otherwise the tick waits the window out.
        let exec_start = if j - i >= config.max_batch {
            open.max(arrivals_ms[j - 1])
        } else {
            close
        };
        let tick: Vec<&Request> = requests[i..j].iter().collect();
        let outcome = match &observer {
            None => execute_tick(executor, &tick).1,
            Some(obs) => observed_tick(obs, executor, &tick, arrivals_ms, i, j, exec_start),
        };
        let departure = exec_start + outcome.sim_ms;
        stats.record_tick(tick.len(), outcome.queries, outcome.sim_ms);
        for &arrival in &arrivals_ms[i..j] {
            stats.record_latency(departure - arrival);
        }
        if let Some(recorder) = flight.as_deref_mut() {
            let skew = executor.last_shard_skew();
            let stage_device_ms: Vec<(String, f64)> = outcome
                .stage_device_ms
                .iter()
                .filter(|(label, _)| !label.is_empty())
                .map(|(label, ms)| (label.to_string(), *ms))
                .collect();
            for (k, &arrival) in arrivals_ms[i..j].iter().enumerate() {
                recorder.record(RequestTrace {
                    name: requests[i + k].span_name().to_string(),
                    latency_ms: departure - arrival,
                    end_ms: departure,
                    queries: requests[i + k].queries.len() as u64,
                    tick_requests: tick.len() as u64,
                    stage_device_ms: stage_device_ms.clone(),
                    shard_skew: skew,
                });
            }
        }
        free_at = departure;
        last_departure = departure;
        i = j;
    }

    let makespan_ms = (last_departure - arrivals_ms.first().copied().unwrap_or(0.0)).max(0.0);
    let achieved_qps = if makespan_ms > 0.0 {
        requests.len() as f64 / (makespan_ms / 1e3)
    } else {
        0.0
    };
    let offered_qps = if requests.len() > 1 {
        let span_ms = arrivals_ms[requests.len() - 1] - arrivals_ms[0];
        if span_ms > 0.0 {
            (requests.len() - 1) as f64 / (span_ms / 1e3)
        } else {
            f64::INFINITY
        }
    } else {
        0.0
    };
    LoadReport {
        stats,
        makespan_ms,
        achieved_qps,
        offered_qps,
    }
}

/// One tick of the observed replay: advance the virtual clock to the tick's
/// exact schedule instants, run the executor inside a `serve.tick` span (so
/// its pipeline spans nest under the tick on the replay sink), then record
/// each request's span retrospectively over its arrival → departure
/// sojourn.
fn observed_tick<E: TickExecutor>(
    obs: &Observer<'_>,
    executor: &mut E,
    tick: &[&Request],
    arrivals_ms: &[f64],
    i: usize,
    j: usize,
    exec_start: f64,
) -> TickOutcome {
    let tel = obs.telemetry;
    obs.clock.set_ms(exec_start);
    tel.gauge_set("serve.queue_depth", tick.len() as f64);
    let request_ids: Vec<_> = (i..j)
        .map(|_| tel.spans_enabled().then(|| tel.reserve_span_id()))
        .collect();
    let outcome = Telemetry::scoped(tel, || {
        let mut tick_span = tel.span_with_parent("serve.tick", request_ids[0]);
        let (_, outcome) = execute_tick(executor, tick);
        obs.clock.set_ms(exec_start + outcome.sim_ms);
        tick_span
            .attr("requests", tick.len() as f64)
            .attr("queries", outcome.queries as f64)
            .attr("sim_ms", outcome.sim_ms);
        outcome
    });
    tel.counter_add("serve.ticks", 1);
    tel.counter_add("serve.requests", tick.len() as u64);
    let departure = exec_start + outcome.sim_ms;
    for (k, ridx) in (i..j).enumerate() {
        let request = &tick[k];
        let latency_ms = departure - arrivals_ms[ridx];
        tel.observe(request.latency_histogram(), latency_ms);
        if let Some(id) = request_ids[k] {
            tel.record_span_with_id(
                id,
                SpanRecord {
                    name: request.span_name().into(),
                    parent: None,
                    start_ms: arrivals_ms[ridx],
                    end_ms: departure,
                    attrs: vec![
                        ("queries".into(), request.queries.len() as f64),
                        ("latency_ms".into(), latency_ms),
                        ("tick_requests".into(), tick.len() as f64),
                    ],
                },
            );
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtnn::engine::SearchError;
    use rtnn::{QueryPlan, SearchResults, TimeBreakdown};
    use rtnn_math::Vec3;

    /// Costs a fixed 2 ms base per call plus 1 ms per query — a stand-in
    /// with the amortisation profile coalescing exploits.
    struct FixedCost;

    impl TickExecutor for FixedCost {
        fn execute(
            &mut self,
            queries: &[Vec3],
            _plan: &QueryPlan,
        ) -> Result<SearchResults, SearchError> {
            Ok(SearchResults {
                neighbors: vec![Vec::new(); queries.len()],
                breakdown: TimeBreakdown {
                    search_ms: 2.0 + queries.len() as f64,
                    ..Default::default()
                },
                search_metrics: Default::default(),
                fs_metrics: Default::default(),
                num_partitions: 1,
                num_bundles: 1,
                trace: Default::default(),
            })
        }
    }

    fn req() -> Request {
        Request::new(vec![Vec3::ZERO], QueryPlan::knn(1.0, 2))
    }

    #[test]
    fn arrivals_are_deterministic_sorted_and_rate_matched() {
        let a = poisson_arrivals(2_000, 100.0, 7);
        let b = poisson_arrivals(2_000, 100.0, 7);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        let rate = 1_999.0 / ((a[1_999] - a[0]) / 1e3);
        assert!((rate - 100.0).abs() / 100.0 < 0.15, "rate {rate}");
        assert_ne!(a, poisson_arrivals(2_000, 100.0, 8));
    }

    #[test]
    fn saturated_coalescing_beats_one_per_call() {
        let requests: Vec<Request> = (0..200).map(|_| req()).collect();
        // Saturating: everything arrives almost immediately.
        let arrivals: Vec<f64> = (0..200).map(|i| i as f64 * 1e-3).collect();
        let coalesced = run_virtual(
            &mut FixedCost,
            &requests,
            &arrivals,
            &ServeConfig::default()
                .with_window_us(1_000)
                .with_max_batch(16),
        );
        let serial = run_virtual(
            &mut FixedCost,
            &requests,
            &arrivals,
            &ServeConfig::default().without_coalescing(),
        );
        // Serial pays 3 ms per request; 16-request ticks pay 18 ms for 16.
        assert!(coalesced.stats.mean_tick_requests() > 4.0);
        assert_eq!(serial.stats.mean_tick_requests(), 1.0);
        assert!(
            coalesced.achieved_qps > 1.3 * serial.achieved_qps,
            "coalesced {} vs serial {}",
            coalesced.achieved_qps,
            serial.achieved_qps
        );
        assert!(coalesced.stats.sim_ms < serial.stats.sim_ms);
    }

    #[test]
    fn full_batches_close_the_window_early() {
        // Everything is waiting at t=0; with max_batch=4 and a huge window
        // the service must not idle: ticks of 4 execute back to back.
        let requests: Vec<Request> = (0..8).map(|_| req()).collect();
        let arrivals = vec![0.0; 8];
        let cfg = ServeConfig::default()
            .with_window_us(1_000_000) // 1000 ms window
            .with_max_batch(4);
        let report = run_virtual(&mut FixedCost, &requests, &arrivals, &cfg);
        assert_eq!(report.stats.ticks, 2);
        // Each tick costs 2 + 4 = 6 ms; no window wait in between.
        assert!(
            (report.makespan_ms - 12.0).abs() < 1e-9,
            "{}",
            report.makespan_ms
        );
    }

    #[test]
    fn idle_load_pays_the_window_in_latency() {
        let requests: Vec<Request> = (0..5).map(|_| req()).collect();
        // Arrivals far apart: every tick serves one request.
        let arrivals: Vec<f64> = (0..5).map(|i| i as f64 * 1_000.0).collect();
        let cfg = ServeConfig::default().with_window_us(500);
        let report = run_virtual(&mut FixedCost, &requests, &arrivals, &cfg);
        assert_eq!(report.stats.ticks, 5);
        // Latency = window (0.5 ms) + execution (3 ms).
        assert!((report.latency_ms(0.5) - 3.5).abs() < 1e-9);
        let no_window = run_virtual(
            &mut FixedCost,
            &requests,
            &arrivals,
            &ServeConfig::default().without_coalescing(),
        );
        assert!((no_window.latency_ms(0.5) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn recorded_replay_reproducibly_pins_the_same_breach_exemplar() {
        use rtnn_telemetry::{SloConfig, SloEvent};
        let requests: Vec<Request> = (0..120).map(|_| req()).collect();
        // Saturating offered load: each 8-request tick costs 10 virtual ms
        // but its requests arrive within ~4 ms, so the backlog — and with
        // it the request latencies — must grow past any fixed target.
        let arrivals = poisson_arrivals(120, 2_000.0, 23);
        let cfg = ServeConfig::default()
            .with_window_us(1_000)
            .with_max_batch(8);
        let slo = SloConfig {
            quantile: 0.9,
            target_ms: 8.0,
            window: 32,
            min_samples: 8,
        };
        let run = || {
            let mut recorder = FlightRecorder::with_slo(64, slo);
            let (report, snapshot) = run_virtual_recorded(
                &mut FixedCost,
                &requests,
                &arrivals,
                &cfg,
                TelemetryLevel::Basic,
                &mut recorder,
            );
            (report, snapshot, recorder)
        };
        let (report_a, snap_a, flight_a) = run();
        let (report_b, snap_b, flight_b) = run();

        // Recording never perturbs the replay.
        let plain = run_virtual(&mut FixedCost, &requests, &arrivals, &cfg);
        assert_eq!(report_a.stats, plain.stats);
        assert_eq!(report_a.stats, report_b.stats);
        assert_eq!(snap_a, snap_b);

        // The breach fires, pins an exemplar, and does so identically on
        // every run of the same schedule.
        assert!(
            flight_a
                .events()
                .iter()
                .any(|e| matches!(e, SloEvent::Breach { .. })),
            "saturating load must breach the 8 ms p90 target: {:?}",
            flight_a.events()
        );
        assert!(!flight_a.pinned().is_empty());
        assert_eq!(flight_a.events(), flight_b.events());
        assert_eq!(flight_a.pinned(), flight_b.pinned());
        assert_eq!(flight_a.to_jsonl(), flight_b.to_jsonl());

        // The exemplar is a real slow request with its breakdown attached.
        let exemplar = &flight_a.pinned()[0].trace;
        assert!(exemplar.latency_ms >= 8.0, "{}", exemplar.latency_ms);
        assert_eq!(exemplar.name, "serve.request.knn");
    }

    #[test]
    fn observed_replay_matches_the_plain_one_and_snapshots_deterministically() {
        let requests: Vec<Request> = (0..40).map(|_| req()).collect();
        let arrivals = poisson_arrivals(40, 500.0, 11);
        let cfg = ServeConfig::default()
            .with_window_us(2_000)
            .with_max_batch(8);
        let plain = run_virtual(&mut FixedCost, &requests, &arrivals, &cfg);
        let (observed, snap_a) = run_virtual_observed(
            &mut FixedCost,
            &requests,
            &arrivals,
            &cfg,
            TelemetryLevel::Full,
        );
        let (_, snap_b) = run_virtual_observed(
            &mut FixedCost,
            &requests,
            &arrivals,
            &cfg,
            TelemetryLevel::Full,
        );

        // Observation never changes the replay.
        assert_eq!(observed.stats, plain.stats);
        assert_eq!(observed.makespan_ms, plain.makespan_ms);

        // Snapshots are bit-deterministic and structurally sound.
        assert_eq!(snap_a, snap_b);
        assert!(snap_a.deterministic);
        snap_a.check_nesting(1e-9).unwrap();
        assert_eq!(
            snap_a.spans_named("serve.tick").count(),
            plain.stats.ticks,
            "one tick span per tick"
        );
        assert_eq!(
            snap_a.spans_named("serve.request.knn").count(),
            requests.len(),
            "one request span per request"
        );
        assert_eq!(
            snap_a.metrics.counter("serve.requests"),
            Some(requests.len() as u64)
        );
        let lat = snap_a.metrics.histogram("serve.latency.knn").unwrap();
        assert_eq!(lat.count, requests.len() as u64);
        assert_eq!(lat.p999, plain.stats.latency_p999());

        // Basic drops the spans but keeps the metrics.
        let (_, basic) = run_virtual_observed(
            &mut FixedCost,
            &requests,
            &arrivals,
            &cfg,
            TelemetryLevel::Basic,
        );
        assert!(basic.spans.is_empty());
        assert_eq!(
            basic.metrics.counter("serve.ticks"),
            Some(plain.stats.ticks as u64)
        );
    }
}
