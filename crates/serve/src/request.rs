//! The request/response vocabulary of the query service.

use rtnn::engine::SearchError;
use rtnn::QueryPlan;
use rtnn_math::Vec3;

/// One point-query request: a set of query positions plus the plan to
/// answer them with (any [`QueryPlan`] — KNN, range, or a heterogeneous
/// batch with absolute ids into `queries`).
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Query positions, in the order the response's neighbor lists use.
    pub queries: Vec<Vec3>,
    /// The plan to answer them with.
    pub plan: QueryPlan,
}

impl Request {
    /// A request answering `plan` for `queries`.
    pub fn new(queries: Vec<Vec3>, plan: QueryPlan) -> Self {
        Request { queries, plan }
    }

    /// Telemetry span name for this request, keyed by plan kind
    /// (`serve.request.knn` / `.range` / `.batch`).
    pub fn span_name(&self) -> &'static str {
        match self.plan.kind_label() {
            "knn" => "serve.request.knn",
            "range" => "serve.request.range",
            _ => "serve.request.batch",
        }
    }

    /// Telemetry latency-histogram name for this request, keyed by plan
    /// kind (`serve.latency.knn` / `.range` / `.batch`). Units follow
    /// [`ServiceStats::latencies`](crate::ServiceStats::latencies): wall
    /// microseconds on the live service, virtual milliseconds in the load
    /// harness.
    pub fn latency_histogram(&self) -> &'static str {
        match self.plan.kind_label() {
            "knn" => "serve.latency.knn",
            "range" => "serve.latency.range",
            _ => "serve.latency.batch",
        }
    }
}

/// Per-request serving statistics, reported with every [`Response`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RequestStats {
    /// Wall microseconds from submission to response (live service) or
    /// virtual milliseconds of sojourn time (load harness).
    pub latency_us: f64,
    /// How many requests shared this request's execution tick (1 when the
    /// request executed alone).
    pub tick_requests: usize,
    /// Simulated milliseconds of the tick that served this request.
    pub tick_sim_ms: f64,
}

/// The outcome of one request: per-query neighbor lists in the request's
/// query order — bit-equal to what a direct `Index::query` call would have
/// returned — or the typed error its plan failed validation with.
#[derive(Debug, Clone)]
pub struct Response {
    /// Per-query neighbor ids (global point ids), or the plan error.
    pub outcome: Result<Vec<Vec<u32>>, SearchError>,
    /// Serving statistics.
    pub stats: RequestStats,
}

impl Response {
    /// The neighbor lists, panicking on an error response (tests/examples).
    pub fn neighbors(&self) -> &Vec<Vec<u32>> {
        self.outcome.as_ref().expect("request failed")
    }
}
