//! The live multi-threaded query service: a channel-based client handle,
//! a dispatcher that coalesces whatever is in flight within a bounded
//! window, and per-request / per-tick statistics.
//!
//! ## Threading model
//!
//! The dispatcher runs wherever [`QueryService::run`] is called and *owns*
//! the executor (an `Index` or [`ShardedIndex`](crate::ShardedIndex)) for
//! the duration of the run — clients never touch the index, they only talk
//! to the [`ServiceClient`] over a channel, so any number of client
//! threads can submit concurrently. A sharded executor additionally fans
//! each tick out over the `rtnn-parallel` worker pool. The service drains
//! and exits when every client handle has been dropped.
//!
//! ```
//! use rtnn::{EngineConfig, GpusimBackend, Index, QueryPlan};
//! use rtnn_gpusim::Device;
//! use rtnn_math::Vec3;
//! use rtnn_serve::{QueryService, Request, ServeConfig};
//!
//! let device = Device::rtx_2080();
//! let backend = GpusimBackend::new(&device);
//! let points: Vec<Vec3> = (0..500)
//!     .map(|i| Vec3::new((i % 8) as f32, ((i / 8) % 8) as f32, (i / 64) as f32))
//!     .collect();
//! let queries = points[..16].to_vec();
//! let mut index = Index::build(&backend, &points[..], EngineConfig::default());
//!
//! let (service, client) = QueryService::new(ServeConfig::default());
//! let stats = crossbeam::thread::scope(|s| {
//!     s.spawn(move |_| {
//!         let pending = client.submit(Request::new(queries, QueryPlan::knn(1.5, 4)));
//!         let response = pending.wait();
//!         assert_eq!(response.neighbors().len(), 16);
//!         // client handle drops here -> the service drains and exits
//!     });
//!     service.run(&mut index)
//! })
//! .unwrap();
//! assert_eq!(stats.requests, 1);
//! ```

use crate::coalesce::{execute_tick_tuned, TickExecutor};
use crate::config::ServeConfig;
use crate::request::{Request, RequestStats, Response};
use crate::stats::ServiceStats;
use rtnn::AutoTuner;
use rtnn_telemetry::{
    FlightRecorder, RequestTrace, SpanId, SpanRecord, Telemetry, TelemetrySnapshot,
};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One in-flight request plus its reply channel.
struct Envelope {
    request: Request,
    submitted: Instant,
    reply: mpsc::Sender<Response>,
    /// Pre-reserved id of the request's telemetry span (`None` when spans
    /// are disabled); the dispatcher records it once the reply is sent.
    span_id: Option<SpanId>,
    /// Submission instant on the telemetry clock, for the span interval.
    submitted_ms: f64,
}

/// A cloneable client handle: submit requests, receive responses.
#[derive(Clone)]
pub struct ServiceClient {
    tx: mpsc::Sender<Envelope>,
    telemetry: Arc<Telemetry>,
}

/// A response that has not arrived yet (returned by
/// [`ServiceClient::submit`]).
pub struct PendingResponse {
    rx: mpsc::Receiver<Response>,
}

impl PendingResponse {
    /// Block until the response arrives.
    ///
    /// # Panics
    ///
    /// Panics if the service dropped the request without responding (it
    /// stopped running before the request's tick).
    pub fn wait(self) -> Response {
        self.rx
            .recv()
            .expect("the query service stopped before responding")
    }
}

impl ServiceClient {
    /// Enqueue `request`; the returned handle yields the [`Response`].
    ///
    /// # Panics
    ///
    /// Panics if the service is no longer running.
    pub fn submit(&self, request: Request) -> PendingResponse {
        let (reply, rx) = mpsc::channel();
        let (span_id, submitted_ms) = if self.telemetry.spans_enabled() {
            (
                Some(self.telemetry.reserve_span_id()),
                self.telemetry.now_ms(),
            )
        } else {
            (None, 0.0)
        };
        self.tx
            .send(Envelope {
                request,
                submitted: Instant::now(),
                reply,
                span_id,
                submitted_ms,
            })
            .expect("the query service is no longer running");
        PendingResponse { rx }
    }

    /// Submit and wait in one call.
    pub fn call(&self, request: Request) -> Response {
        self.submit(request).wait()
    }

    /// The telemetry sink the service records to.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Freeze the service's telemetry: serving metrics (queue-depth /
    /// window gauges, per-plan-kind `serve.latency.*` histograms with
    /// exact p50/p99/p999) plus, at level `full`, the completed span trees
    /// — one `serve.request.*` root per request, its `serve.tick` child,
    /// and the executor's pipeline spans beneath. Valid mid-run: clients
    /// can snapshot while the dispatcher is serving.
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        self.telemetry.snapshot()
    }
}

/// The dispatcher half of the service (see module docs).
pub struct QueryService {
    rx: mpsc::Receiver<Envelope>,
    config: ServeConfig,
    telemetry: Arc<Telemetry>,
    /// Optional SLO flight recorder: every served request lands in its ring
    /// with the tick's stage breakdown and shard skew, and SLO breaches pin
    /// the worst exemplar in the window (see
    /// [`FlightRecorder`](rtnn_telemetry::FlightRecorder)).
    flight: Option<Arc<Mutex<FlightRecorder>>>,
    /// Optional adaptive stage tuner: when attached, every coalesced tick
    /// takes **one** tuning decision for its fused batch (recorded on the
    /// tick's [`TickOutcome`](crate::TickOutcome)) and folds the tick's
    /// measured stage timings back in. Shared via `Arc<Mutex<..>>` so the
    /// caller can inspect [`AutoTuner::report`] after (or during) the run.
    tuner: Option<Arc<Mutex<AutoTuner>>>,
}

impl QueryService {
    /// A service with its first client handle (clone the handle for more
    /// clients; the service exits once all handles are dropped). Records to
    /// the process-wide [`Telemetry::global`] sink (the `RTNN_TELEMETRY`
    /// knob); use [`QueryService::with_telemetry`] to capture a run on a
    /// private sink instead.
    pub fn new(config: ServeConfig) -> (QueryService, ServiceClient) {
        Self::with_telemetry(config, Telemetry::global().clone())
    }

    /// A service recording to an explicit telemetry sink — every request
    /// span, tick span, gauge and latency histogram of this run lands
    /// there, retrievable via [`ServiceClient::telemetry_snapshot`].
    pub fn with_telemetry(
        config: ServeConfig,
        telemetry: Arc<Telemetry>,
    ) -> (QueryService, ServiceClient) {
        let (tx, rx) = mpsc::channel();
        (
            QueryService {
                rx,
                config,
                telemetry: telemetry.clone(),
                flight: None,
                tuner: None,
            },
            ServiceClient { tx, telemetry },
        )
    }

    /// Attach an SLO flight recorder: the dispatcher records one
    /// [`RequestTrace`] per served request
    /// (latency, tick stage breakdown, shard skew), and — when the recorder
    /// carries an [`SloMonitor`](rtnn_telemetry::SloMonitor) — pins breach
    /// exemplars as they happen. The caller keeps its `Arc` to inspect or
    /// dump the recorder after (or during) the run.
    pub fn with_flight_recorder(mut self, recorder: Arc<Mutex<FlightRecorder>>) -> QueryService {
        self.flight = Some(recorder);
        self
    }

    /// Attach an adaptive stage tuner: each coalesced tick consults it
    /// once — one decision per fused batch, keyed on the executed plan's
    /// kind, the executor's density and backend — executes under the
    /// decided [`rtnn::StageOverrides`], and reports the measured stage
    /// timings back. Decisions ride on every tick's
    /// [`TickOutcome::tuned`](crate::TickOutcome::tuned). Tuning never
    /// changes responses: every request stays bit-equal to its untuned
    /// execution. The caller keeps its `Arc` to read
    /// [`AutoTuner::report`] afterwards.
    pub fn with_auto_tuner(mut self, tuner: Arc<Mutex<AutoTuner>>) -> QueryService {
        self.tuner = Some(tuner);
        self
    }

    /// Run the dispatch loop on the current thread until every client
    /// handle has been dropped and the queue is drained. Returns the run's
    /// statistics (latencies in wall microseconds).
    pub fn run<E: TickExecutor>(self, executor: &mut E) -> ServiceStats {
        let tel = &self.telemetry;
        tel.gauge_set(
            "serve.coalescing_window_us",
            if self.config.coalescing {
                self.config.window_us as f64
            } else {
                0.0
            },
        );
        let mut stats = ServiceStats::default();
        loop {
            // Block for the first request of the tick; a disconnect with an
            // empty queue ends the run.
            let Ok(first) = self.rx.recv() else { break };
            let mut tick: Vec<Envelope> = vec![first];

            if self.config.coalescing {
                // Keep draining whatever lands within the window.
                let deadline = Instant::now() + self.config.window();
                while tick.len() < self.config.max_batch {
                    let now = Instant::now();
                    let Some(remaining) = deadline
                        .checked_duration_since(now)
                        .filter(|d| !d.is_zero())
                    else {
                        break;
                    };
                    match self.rx.recv_timeout(remaining) {
                        Ok(envelope) => tick.push(envelope),
                        Err(_) => break, // window elapsed or all clients gone
                    }
                }
            }

            tel.gauge_set("serve.queue_depth", tick.len() as f64);
            // Execute inside a `serve.tick` span scoped to this sink, so
            // the executor's own pipeline spans nest under the tick. The
            // tick span parents under the request that opened it; requests
            // that merely joined carry the same tick via their attrs.
            let (outcomes, tick_outcome) = Telemetry::scoped(tel, || {
                let mut tick_span = tel.span_with_parent("serve.tick", tick[0].span_id);
                let requests: Vec<&Request> = tick.iter().map(|e| &e.request).collect();
                let result = match &self.tuner {
                    Some(tuner) => {
                        let mut tuner = tuner.lock().expect("auto tuner lock poisoned");
                        execute_tick_tuned(executor, &requests, Some(&mut tuner))
                    }
                    None => execute_tick_tuned(executor, &requests, None),
                };
                tick_span
                    .attr("requests", tick.len() as f64)
                    .attr("queries", result.1.queries as f64)
                    .attr("sim_ms", result.1.sim_ms);
                if let Some(d) = result.1.tuned {
                    tick_span.attr("tuned_level", d.level as usize as f64);
                }
                result
            });
            let tick_requests = tick.len();
            let tick_skew = executor.last_shard_skew();
            tel.counter_add("serve.ticks", 1);
            tel.counter_add("serve.requests", tick_requests as u64);
            stats.record_tick(tick_requests, tick_outcome.queries, tick_outcome.sim_ms);

            for (envelope, outcome) in tick.into_iter().zip(outcomes) {
                let latency_us = envelope.submitted.elapsed().as_secs_f64() * 1e6;
                stats.record_latency(latency_us);
                tel.observe(envelope.request.latency_histogram(), latency_us);
                if let Some(flight) = &self.flight {
                    // The recorder speaks milliseconds; the service's wall
                    // latencies are microseconds.
                    flight
                        .lock()
                        .expect("flight recorder lock poisoned")
                        .record(RequestTrace {
                            name: envelope.request.span_name().to_string(),
                            latency_ms: latency_us / 1e3,
                            end_ms: tel.now_ms(),
                            queries: envelope.request.queries.len() as u64,
                            tick_requests: tick_requests as u64,
                            stage_device_ms: tick_outcome
                                .stage_device_ms
                                .iter()
                                .filter(|(label, _)| !label.is_empty())
                                .map(|(label, ms)| (label.to_string(), *ms))
                                .collect(),
                            shard_skew: tick_skew,
                        });
                }
                if let Some(id) = envelope.span_id {
                    // Recorded before the reply, so once a client's call
                    // returns its own request span is already in any
                    // snapshot it takes; the interval still covers the
                    // full submit → respond sojourn on the telemetry
                    // clock.
                    tel.record_span_with_id(
                        id,
                        SpanRecord {
                            name: envelope.request.span_name().into(),
                            parent: None,
                            start_ms: envelope.submitted_ms,
                            end_ms: tel.now_ms(),
                            attrs: vec![
                                ("queries".into(), envelope.request.queries.len() as f64),
                                ("latency_us".into(), latency_us),
                                ("tick_requests".into(), tick_requests as f64),
                            ],
                        },
                    );
                }
                // A client that gave up on its response is not an error.
                let _ = envelope.reply.send(Response {
                    outcome,
                    stats: RequestStats {
                        latency_us,
                        tick_requests,
                        tick_sim_ms: tick_outcome.sim_ms,
                    },
                });
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtnn::{EngineConfig, GpusimBackend, Index, QueryPlan};
    use rtnn_gpusim::Device;
    use rtnn_math::Vec3;

    fn cloud(n: usize) -> Vec<Vec3> {
        (0..n)
            .map(|i| {
                let f = i as f32;
                Vec3::new((f * 0.713) % 9.0, (f * 0.391) % 9.0, (f * 0.267) % 9.0)
            })
            .collect()
    }

    #[test]
    fn concurrent_clients_get_their_own_bit_equal_responses() {
        let device = Device::rtx_2080();
        let backend = GpusimBackend::new(&device);
        let points = cloud(400);
        let mut index = Index::build(&backend, &points[..], EngineConfig::default());

        // Direct (unserved) reference results per request.
        let requests: Vec<Request> = (0..8)
            .map(|i| {
                let queries: Vec<Vec3> = points
                    .iter()
                    .skip(i)
                    .step_by(17)
                    .take(12)
                    .copied()
                    .collect();
                let plan = if i % 2 == 0 {
                    QueryPlan::knn(1.2, 5)
                } else {
                    QueryPlan::range(0.9, 100_000)
                };
                Request::new(queries, plan)
            })
            .collect();
        let mut direct = Index::build(&backend, &points[..], EngineConfig::default());
        let expected: Vec<Vec<Vec<u32>>> = requests
            .iter()
            .map(|r| direct.query(&r.queries, &r.plan).unwrap().neighbors)
            .collect();

        let (service, client) = QueryService::new(ServeConfig::default().with_window_us(2_000));
        let stats = crossbeam::thread::scope(|s| {
            for (req, exp) in requests.iter().zip(&expected) {
                let client = client.clone();
                s.spawn(move |_| {
                    let response = client.call(req.clone());
                    assert_eq!(response.neighbors(), exp);
                    assert!(response.stats.tick_requests >= 1);
                });
            }
            drop(client);
            service.run(&mut index)
        })
        .unwrap();
        assert_eq!(stats.requests, 8);
        assert_eq!(stats.latencies.len(), 8);
        assert!(stats.sim_ms > 0.0);
        assert!(stats.latency_percentile(0.99) >= stats.latency_percentile(0.5));
    }

    #[test]
    fn coalescing_off_serves_one_request_per_tick() {
        let device = Device::rtx_2080();
        let backend = GpusimBackend::new(&device);
        let points = cloud(200);
        let mut index = Index::build(&backend, &points[..], EngineConfig::default());
        let queries = points[..8].to_vec();
        let (service, client) = QueryService::new(ServeConfig::default().without_coalescing());
        let stats = crossbeam::thread::scope(|s| {
            s.spawn(move |_| {
                for _ in 0..5 {
                    let r = client.call(Request::new(queries.clone(), QueryPlan::knn(1.0, 3)));
                    assert!(r.outcome.is_ok());
                    assert_eq!(r.stats.tick_requests, 1);
                }
            });
            service.run(&mut index)
        })
        .unwrap();
        assert_eq!(stats.ticks, 5);
        assert_eq!(stats.requests, 5);
        assert_eq!(stats.coalesced_requests, 0);
        assert_eq!(stats.max_tick_requests, 1);
    }

    #[test]
    fn one_request_yields_a_connected_span_tree() {
        use rtnn_telemetry::TelemetryLevel;
        let device = Device::rtx_2080();
        let backend = GpusimBackend::new(&device);
        let points = cloud(300);
        let mut index = Index::build(&backend, &points[..], EngineConfig::default());
        let queries = points[..8].to_vec();
        let sink = Telemetry::new(TelemetryLevel::Full);
        let (service, client) = QueryService::with_telemetry(ServeConfig::default(), sink);
        let snapshot = crossbeam::thread::scope(|s| {
            let handle = s.spawn(move |_| {
                let r = client.call(Request::new(queries, QueryPlan::knn(1.2, 4)));
                assert!(r.outcome.is_ok());
                client.telemetry_snapshot()
            });
            service.run(&mut index);
            handle.join().unwrap()
        })
        .unwrap();

        // One connected tree: request → tick → the executor's query span
        // → its pipeline stages.
        let roots = snapshot.roots();
        assert_eq!(roots.len(), 1, "roots: {roots:?}");
        let request = roots[0];
        assert_eq!(request.name, "serve.request.knn");
        let ticks = snapshot.children_of(request.id);
        assert_eq!(ticks.len(), 1);
        assert_eq!(ticks[0].name, "serve.tick");
        let queries_spans = snapshot.children_of(ticks[0].id);
        assert!(
            queries_spans.iter().any(|s| s.name == "index.query.knn"),
            "tick children: {queries_spans:?}"
        );
        assert_eq!(
            snapshot.subtree(request.id).len(),
            snapshot.spans.len(),
            "every span hangs off the one request"
        );
        snapshot.check_nesting(1e-6).unwrap();
        assert_eq!(
            snapshot
                .metrics
                .histogram("serve.latency.knn")
                .unwrap()
                .count,
            1
        );
        assert_eq!(snapshot.metrics.counter("serve.ticks"), Some(1));
    }

    #[test]
    fn flight_recorder_captures_every_request_and_pins_a_breach() {
        use rtnn_telemetry::{SloConfig, SloEvent};
        let device = Device::rtx_2080();
        let backend = GpusimBackend::new(&device);
        let points = cloud(300);
        let mut index = Index::build(&backend, &points[..], EngineConfig::default());
        let queries = points[..8].to_vec();
        // A 0 ms target: every wall latency is positive, so the monitor
        // breaches deterministically on its first judged sample.
        let slo = SloConfig {
            quantile: 0.5,
            target_ms: 0.0,
            window: 8,
            min_samples: 1,
        };
        let recorder = Arc::new(Mutex::new(FlightRecorder::with_slo(32, slo)));
        let (service, client) = QueryService::new(ServeConfig::default().without_coalescing());
        let service = service.with_flight_recorder(recorder.clone());
        crossbeam::thread::scope(|s| {
            s.spawn(move |_| {
                for _ in 0..5 {
                    let r = client.call(Request::new(queries.clone(), QueryPlan::knn(1.0, 3)));
                    assert!(r.outcome.is_ok());
                }
            });
            service.run(&mut index)
        })
        .unwrap();

        let flight = recorder.lock().unwrap();
        assert_eq!(flight.len(), 5, "one trace per served request");
        for trace in flight.recent() {
            assert_eq!(trace.name, "serve.request.knn");
            assert!(trace.latency_ms > 0.0);
            assert_eq!(trace.shard_skew, 0.0, "unsharded executor");
            assert!(
                trace
                    .stage_device_ms
                    .iter()
                    .any(|(l, ms)| l == "Launch" && *ms > 0.0),
                "tick stage breakdown rides the trace: {:?}",
                trace.stage_device_ms
            );
        }
        assert!(
            flight
                .events()
                .iter()
                .any(|e| matches!(e, SloEvent::Breach { .. })),
            "0ms target must breach"
        );
        assert!(!flight.pinned().is_empty(), "breach pins an exemplar");
        // At least the meta line plus one line per recorded trace.
        assert!(flight.to_jsonl().lines().count() > 5);
    }

    #[test]
    fn invalid_request_fails_without_stopping_the_service() {
        let device = Device::rtx_2080();
        let backend = GpusimBackend::new(&device);
        let points = cloud(100);
        let mut index = Index::build(&backend, &points[..], EngineConfig::default());
        let queries = points[..4].to_vec();
        let (service, client) = QueryService::new(ServeConfig::default());
        crossbeam::thread::scope(|s| {
            s.spawn(move |_| {
                let bad = client.call(Request::new(queries.clone(), QueryPlan::knn(-1.0, 3)));
                assert!(bad.outcome.is_err());
                let good = client.call(Request::new(queries.clone(), QueryPlan::knn(1.0, 3)));
                assert!(good.outcome.is_ok());
            });
            service.run(&mut index)
        })
        .unwrap();
    }
}
