//! The live multi-threaded query service: a channel-based client handle,
//! a dispatcher that coalesces whatever is in flight within a bounded
//! window, and per-request / per-tick statistics.
//!
//! ## Threading model
//!
//! The dispatcher runs wherever [`QueryService::run`] is called and *owns*
//! the executor (an `Index` or [`ShardedIndex`](crate::ShardedIndex)) for
//! the duration of the run — clients never touch the index, they only talk
//! to the [`ServiceClient`] over a channel, so any number of client
//! threads can submit concurrently. A sharded executor additionally fans
//! each tick out over the `rtnn-parallel` worker pool. The service drains
//! and exits when every client handle has been dropped.
//!
//! ```
//! use rtnn::{EngineConfig, GpusimBackend, Index, QueryPlan};
//! use rtnn_gpusim::Device;
//! use rtnn_math::Vec3;
//! use rtnn_serve::{QueryService, Request, ServeConfig};
//!
//! let device = Device::rtx_2080();
//! let backend = GpusimBackend::new(&device);
//! let points: Vec<Vec3> = (0..500)
//!     .map(|i| Vec3::new((i % 8) as f32, ((i / 8) % 8) as f32, (i / 64) as f32))
//!     .collect();
//! let queries = points[..16].to_vec();
//! let mut index = Index::build(&backend, &points[..], EngineConfig::default());
//!
//! let (service, client) = QueryService::new(ServeConfig::default());
//! let stats = crossbeam::thread::scope(|s| {
//!     s.spawn(move |_| {
//!         let pending = client.submit(Request::new(queries, QueryPlan::knn(1.5, 4)));
//!         let response = pending.wait();
//!         assert_eq!(response.neighbors().len(), 16);
//!         // client handle drops here -> the service drains and exits
//!     });
//!     service.run(&mut index)
//! })
//! .unwrap();
//! assert_eq!(stats.requests, 1);
//! ```

use crate::coalesce::{execute_tick, TickExecutor};
use crate::config::ServeConfig;
use crate::request::{Request, RequestStats, Response};
use crate::stats::ServiceStats;
use std::sync::mpsc;
use std::time::Instant;

/// One in-flight request plus its reply channel.
struct Envelope {
    request: Request,
    submitted: Instant,
    reply: mpsc::Sender<Response>,
}

/// A cloneable client handle: submit requests, receive responses.
#[derive(Clone)]
pub struct ServiceClient {
    tx: mpsc::Sender<Envelope>,
}

/// A response that has not arrived yet (returned by
/// [`ServiceClient::submit`]).
pub struct PendingResponse {
    rx: mpsc::Receiver<Response>,
}

impl PendingResponse {
    /// Block until the response arrives.
    ///
    /// # Panics
    ///
    /// Panics if the service dropped the request without responding (it
    /// stopped running before the request's tick).
    pub fn wait(self) -> Response {
        self.rx
            .recv()
            .expect("the query service stopped before responding")
    }
}

impl ServiceClient {
    /// Enqueue `request`; the returned handle yields the [`Response`].
    ///
    /// # Panics
    ///
    /// Panics if the service is no longer running.
    pub fn submit(&self, request: Request) -> PendingResponse {
        let (reply, rx) = mpsc::channel();
        self.tx
            .send(Envelope {
                request,
                submitted: Instant::now(),
                reply,
            })
            .expect("the query service is no longer running");
        PendingResponse { rx }
    }

    /// Submit and wait in one call.
    pub fn call(&self, request: Request) -> Response {
        self.submit(request).wait()
    }
}

/// The dispatcher half of the service (see module docs).
pub struct QueryService {
    rx: mpsc::Receiver<Envelope>,
    config: ServeConfig,
}

impl QueryService {
    /// A service with its first client handle (clone the handle for more
    /// clients; the service exits once all handles are dropped).
    pub fn new(config: ServeConfig) -> (QueryService, ServiceClient) {
        let (tx, rx) = mpsc::channel();
        (QueryService { rx, config }, ServiceClient { tx })
    }

    /// Run the dispatch loop on the current thread until every client
    /// handle has been dropped and the queue is drained. Returns the run's
    /// statistics (latencies in wall microseconds).
    pub fn run<E: TickExecutor>(self, executor: &mut E) -> ServiceStats {
        let mut stats = ServiceStats::default();
        loop {
            // Block for the first request of the tick; a disconnect with an
            // empty queue ends the run.
            let Ok(first) = self.rx.recv() else { break };
            let mut tick: Vec<Envelope> = vec![first];

            if self.config.coalescing {
                // Keep draining whatever lands within the window.
                let deadline = Instant::now() + self.config.window();
                while tick.len() < self.config.max_batch {
                    let now = Instant::now();
                    let Some(remaining) = deadline
                        .checked_duration_since(now)
                        .filter(|d| !d.is_zero())
                    else {
                        break;
                    };
                    match self.rx.recv_timeout(remaining) {
                        Ok(envelope) => tick.push(envelope),
                        Err(_) => break, // window elapsed or all clients gone
                    }
                }
            }

            let requests: Vec<&Request> = tick.iter().map(|e| &e.request).collect();
            let (outcomes, tick_outcome) = execute_tick(executor, &requests);
            drop(requests);
            let tick_requests = tick.len();
            stats.record_tick(tick_requests, tick_outcome.queries, tick_outcome.sim_ms);

            for (envelope, outcome) in tick.into_iter().zip(outcomes) {
                let latency_us = envelope.submitted.elapsed().as_secs_f64() * 1e6;
                stats.record_latency(latency_us);
                // A client that gave up on its response is not an error.
                let _ = envelope.reply.send(Response {
                    outcome,
                    stats: RequestStats {
                        latency_us,
                        tick_requests,
                        tick_sim_ms: tick_outcome.sim_ms,
                    },
                });
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtnn::{EngineConfig, GpusimBackend, Index, QueryPlan};
    use rtnn_gpusim::Device;
    use rtnn_math::Vec3;

    fn cloud(n: usize) -> Vec<Vec3> {
        (0..n)
            .map(|i| {
                let f = i as f32;
                Vec3::new((f * 0.713) % 9.0, (f * 0.391) % 9.0, (f * 0.267) % 9.0)
            })
            .collect()
    }

    #[test]
    fn concurrent_clients_get_their_own_bit_equal_responses() {
        let device = Device::rtx_2080();
        let backend = GpusimBackend::new(&device);
        let points = cloud(400);
        let mut index = Index::build(&backend, &points[..], EngineConfig::default());

        // Direct (unserved) reference results per request.
        let requests: Vec<Request> = (0..8)
            .map(|i| {
                let queries: Vec<Vec3> = points
                    .iter()
                    .skip(i)
                    .step_by(17)
                    .take(12)
                    .copied()
                    .collect();
                let plan = if i % 2 == 0 {
                    QueryPlan::knn(1.2, 5)
                } else {
                    QueryPlan::range(0.9, 100_000)
                };
                Request::new(queries, plan)
            })
            .collect();
        let mut direct = Index::build(&backend, &points[..], EngineConfig::default());
        let expected: Vec<Vec<Vec<u32>>> = requests
            .iter()
            .map(|r| direct.query(&r.queries, &r.plan).unwrap().neighbors)
            .collect();

        let (service, client) = QueryService::new(ServeConfig::default().with_window_us(2_000));
        let stats = crossbeam::thread::scope(|s| {
            for (req, exp) in requests.iter().zip(&expected) {
                let client = client.clone();
                s.spawn(move |_| {
                    let response = client.call(req.clone());
                    assert_eq!(response.neighbors(), exp);
                    assert!(response.stats.tick_requests >= 1);
                });
            }
            drop(client);
            service.run(&mut index)
        })
        .unwrap();
        assert_eq!(stats.requests, 8);
        assert_eq!(stats.latencies.len(), 8);
        assert!(stats.sim_ms > 0.0);
        assert!(stats.latency_percentile(0.99) >= stats.latency_percentile(0.5));
    }

    #[test]
    fn coalescing_off_serves_one_request_per_tick() {
        let device = Device::rtx_2080();
        let backend = GpusimBackend::new(&device);
        let points = cloud(200);
        let mut index = Index::build(&backend, &points[..], EngineConfig::default());
        let queries = points[..8].to_vec();
        let (service, client) = QueryService::new(ServeConfig::default().without_coalescing());
        let stats = crossbeam::thread::scope(|s| {
            s.spawn(move |_| {
                for _ in 0..5 {
                    let r = client.call(Request::new(queries.clone(), QueryPlan::knn(1.0, 3)));
                    assert!(r.outcome.is_ok());
                    assert_eq!(r.stats.tick_requests, 1);
                }
            });
            service.run(&mut index)
        })
        .unwrap();
        assert_eq!(stats.ticks, 5);
        assert_eq!(stats.requests, 5);
        assert_eq!(stats.coalesced_requests, 0);
        assert_eq!(stats.max_tick_requests, 1);
    }

    #[test]
    fn invalid_request_fails_without_stopping_the_service() {
        let device = Device::rtx_2080();
        let backend = GpusimBackend::new(&device);
        let points = cloud(100);
        let mut index = Index::build(&backend, &points[..], EngineConfig::default());
        let queries = points[..4].to_vec();
        let (service, client) = QueryService::new(ServeConfig::default());
        crossbeam::thread::scope(|s| {
            s.spawn(move |_| {
                let bad = client.call(Request::new(queries.clone(), QueryPlan::knn(-1.0, 3)));
                assert!(bad.outcome.is_err());
                let good = client.call(Request::new(queries.clone(), QueryPlan::knn(1.0, 3)));
                assert!(good.outcome.is_ok());
            });
            service.run(&mut index)
        })
        .unwrap();
    }
}
