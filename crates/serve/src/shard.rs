//! Spatial sharding: one logical index served by N sub-indexes over a
//! Morton-range split of the points, with a deterministic merge that
//! reassembles the exact single-index results.
//!
//! ## Why the merge is exact
//!
//! The engine's traversal visits primitives in a canonical order — the
//! LBVH's `(Morton code over the point bounds, id)` sort — for every AABB
//! width, so [`rtnn::ShardMerge`] can sort the union of per-shard range
//! hits back into single-index hit order, and KNN output is already
//! canonical (sorted by `(distance², id)`), so merging per-shard top-`k`
//! lists by the same key reproduces it. See [`rtnn::ShardMerge`] for the
//! precise conditions (non-truncating range caps; no exact distance ties
//! at the `k`-th neighbor).
//!
//! ## Routing
//!
//! Shards are contiguous chunks of the canonical traversal order, so each
//! is a compact run of the Morton curve. A query is fanned out only to
//! shards whose point bounds intersect its search sphere
//! (`distance²(bounds, q) < r²`); shards that provably cannot contribute a
//! neighbor are skipped, which is where the throughput scaling comes from.
//! Overlapping shards execute concurrently on the `rtnn-parallel` worker
//! pool, each worker owning one shard's `Index` exclusively.

use crate::coalesce::TickExecutor;
use rtnn::engine::SearchError;
use rtnn::{
    Backend, CostCoefficients, EngineConfig, Index, LaunchMetrics, PipelineTrace, PlanSlice,
    QueryPlan, SearchParams, SearchResults, ShardMerge, StageKind, StageOverrides, TimeBreakdown,
    Tuning,
};
use rtnn_math::{Aabb, Vec3};
use rtnn_parallel::{par_map_collect, par_map_collect_mut};
use rtnn_telemetry::{SpanRecord, Telemetry};

/// One shard: a full `Index` over a contiguous Morton range of the points.
struct Shard<'a> {
    index: Index<'a>,
    /// Local point id → global point id.
    global_ids: Vec<u32>,
    /// Bounds of the shard's points (routing pruner).
    bounds: Aabb,
}

/// Per-tick shard timing, for scaling analysis.
#[derive(Debug, Clone, Default)]
pub struct ShardTiming {
    /// Simulated milliseconds each shard spent on the last query call
    /// (zero for shards the routing skipped).
    pub per_shard_ms: Vec<f64>,
    /// Each shard's full per-stage pipeline trace for the last query call
    /// (a default/zero trace for shards the routing skipped). The summed
    /// trace on the returned `SearchResults` loses this breakdown; keeping
    /// it here — and on the emitted `serve.shard` telemetry spans — makes
    /// shard skew visible without re-running.
    pub per_shard_traces: Vec<PipelineTrace>,
}

impl ShardTiming {
    /// The parallel-execution critical path: the slowest shard.
    pub fn critical_path_ms(&self) -> f64 {
        self.per_shard_ms.iter().copied().fold(0.0, f64::max)
    }

    /// Total simulated work across all shards.
    pub fn total_ms(&self) -> f64 {
        self.per_shard_ms.iter().sum()
    }

    /// Shards that actually executed work.
    pub fn active_shards(&self) -> usize {
        self.per_shard_ms.iter().filter(|&&ms| ms > 0.0).count()
    }

    /// Load skew of the last call: critical path over mean active-shard
    /// time (1.0 = perfectly balanced; 0 when nothing ran).
    pub fn skew(&self) -> f64 {
        let active = self.active_shards();
        if active == 0 {
            return 0.0;
        }
        self.critical_path_ms() / (self.total_ms() / active as f64)
    }
}

/// The work routed to one shard for one query call.
struct ShardJob {
    /// Query positions, in shard launch order.
    queries: Vec<Vec3>,
    /// Per plan slice: the *global* query ids routed to this shard, in the
    /// order they were appended to `queries` (slice-major, so the local
    /// index of `routed_ids[sl][i]` is the prefix count).
    routed_ids: Vec<Vec<u32>>,
}

/// A spatially sharded index: behaves like one big [`Index`] — same
/// [`query`](Self::query) contract, bit-equal results — but executes each
/// plan as a fan-out over N sub-indexes plus a deterministic merge: every
/// overlapped shard runs the full execution pipeline
/// ([`rtnn::pipeline`]) over its sub-index, and the per-shard launches are
/// reassembled by the shared [`ShardMerge`] gather
/// ([`ShardMerge::gather_query`]). Per-stage pipeline traces are summed
/// across shards into the result's `trace`.
pub struct ShardedIndex<'a> {
    shards: Vec<Shard<'a>>,
    merge: ShardMerge,
    /// The full cloud, in original id order (the merge recomputes exact
    /// shader distances against it).
    points: Vec<Vec3>,
    last_timing: ShardTiming,
}

impl<'a> ShardedIndex<'a> {
    /// Split `points` into `num_shards` contiguous Morton ranges and build
    /// one sub-index per shard on `backend`. `num_shards` is clamped to
    /// `[1, points.len()]` (an empty cloud gets a single empty shard).
    pub fn build(
        backend: &'a dyn Backend,
        points: &[Vec3],
        config: EngineConfig,
        num_shards: usize,
    ) -> Self {
        let merge = ShardMerge::new(points);
        let order = merge.traversal_order();
        let shards_wanted = num_shards.clamp(1, points.len().max(1));
        let chunk = order.len().div_ceil(shards_wanted).max(1);
        // Assemble the shards concurrently on the worker pool: each chunk
        // of the Morton order gathers its points, takes its bounds and
        // builds its sub-index independently of every other chunk, and
        // `par_map_collect` keeps the deterministic (Morton-range) shard
        // order regardless of which worker finishes first.
        let chunks: Vec<&[u32]> = if order.is_empty() {
            vec![&[]]
        } else {
            order.chunks(chunk).collect()
        };
        // Shards always select stages statically: adaptive tuning operates
        // at the *tick* level (one decision per fan-out, threaded through
        // `query_with`), so a per-shard tuner would both double-decide and
        // let shards diverge from each other within one tick.
        let shard_config = EngineConfig {
            tuning: Tuning::Static,
            ..config
        };
        let shards = par_map_collect(chunks.len(), |ci| {
            // Suppressed: worker-thread telemetry would land in the global
            // sink in scheduling order (see `query` for the rationale).
            Telemetry::suppressed(|| {
                let global_ids = chunks[ci].to_vec();
                let shard_points: Vec<Vec3> =
                    global_ids.iter().map(|&id| points[id as usize]).collect();
                let bounds = Aabb::from_points(&shard_points);
                Shard {
                    index: Index::build(backend, shard_points, shard_config),
                    global_ids,
                    bounds,
                }
            })
        });
        ShardedIndex {
            shards,
            merge,
            points: points.to_vec(),
            last_timing: ShardTiming::default(),
        }
    }

    /// Number of shards actually built.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Points per shard.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.global_ids.len()).collect()
    }

    /// Total number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the index holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Per-shard timing of the most recent [`query`](Self::query) call.
    pub fn last_timing(&self) -> &ShardTiming {
        &self.last_timing
    }

    /// Pre-build every structure `plan` demands on *all* shards
    /// concurrently ([`Index::warm`] fanned over the worker pool) — the
    /// cold-start path a serving layer runs before the first tick lands.
    /// Returns the total simulated build cost incurred across shards (0
    /// when everything was already cached); as with [`Index::warm`], each
    /// shard carries its share forward into its next query's breakdown.
    pub fn warm(&mut self, plan: &QueryPlan) -> Result<f64, SearchError> {
        let tel = Telemetry::current();
        let mut span = tel.as_ref().map(|t| t.span("shard.warm"));
        let outcomes = par_map_collect_mut(&mut self.shards, |_, shard| {
            Telemetry::suppressed(|| shard.index.warm(plan))
        });
        let result = outcomes
            .into_iter()
            .try_fold(0.0, |acc, r| r.map(|ms| acc + ms));
        if let (Ok(ms), Some(span)) = (&result, span.as_mut()) {
            span.attr("device_ms", *ms)
                .attr("shards", self.shards.len() as f64);
        }
        result
    }

    /// Answer `plan` for `queries` — the [`Index::query`] contract, with
    /// the execution fanned out over the shards and the per-shard results
    /// merged deterministically back into single-index form.
    pub fn query(
        &mut self,
        queries: &[Vec3],
        plan: &QueryPlan,
    ) -> Result<SearchResults, SearchError> {
        self.query_with(queries, plan, StageOverrides::default())
    }

    /// [`query`](Self::query) with per-call pipeline [`StageOverrides`]:
    /// the same overrides are threaded into **every** overlapped shard's
    /// pipeline execution, so one tick-level tuning decision governs the
    /// whole fan-out (the stage traits are `Sync`, so the borrowed stages
    /// cross the worker pool directly). The merge is override-agnostic —
    /// results stay bit-equal to the unsharded index under the same
    /// overrides.
    pub fn query_with(
        &mut self,
        queries: &[Vec3],
        plan: &QueryPlan,
        overrides: StageOverrides<'_>,
    ) -> Result<SearchResults, SearchError> {
        let plan = plan.normalized();
        plan.validate(queries.len())
            .map_err(SearchError::InvalidPlan)?;

        // One query span over the whole fan-out + merge; the per-shard
        // spans synthesized below nest under it. Worker threads run
        // suppressed (their ambient stacks are empty, so they would
        // otherwise record straight into the *global* sink in
        // pool-scheduling order — nondeterministic and double-counted).
        let tel = Telemetry::current();
        let mut query_span = tel.as_ref().map(|t| {
            t.counter_add("shard.queries", 1);
            t.span(match plan.as_ref().kind_label() {
                "knn" => "shard.query.knn",
                "range" => "shard.query.range",
                _ => "shard.query.batch",
            })
        });

        // Uniform slice view: a single plan is one slice over every query.
        let all_ids: Vec<u32>;
        let slices: Vec<(SearchParams, &[u32])> = match plan.as_ref() {
            QueryPlan::Batch(slices) => slices
                .iter()
                .map(|s| {
                    (
                        s.plan.params().expect("validated non-batch slice"),
                        s.query_ids.as_slice(),
                    )
                })
                .collect(),
            single => {
                all_ids = (0..queries.len() as u32).collect();
                vec![(
                    single.params().expect("non-batch plan has params"),
                    all_ids.as_slice(),
                )]
            }
        };

        // Route every covered query to the shards its search sphere
        // overlaps.
        let mut jobs: Vec<ShardJob> = (0..self.shards.len())
            .map(|_| ShardJob {
                queries: Vec::new(),
                routed_ids: vec![Vec::new(); slices.len()],
            })
            .collect();
        for (sl, (params, ids)) in slices.iter().enumerate() {
            let r2 = params.radius * params.radius;
            for &qid in ids.iter() {
                let q = queries[qid as usize];
                for (si, shard) in self.shards.iter().enumerate() {
                    if shard.global_ids.is_empty()
                        || shard.bounds.distance_squared_to_point(q) >= r2
                    {
                        continue;
                    }
                    jobs[si].queries.push(q);
                    jobs[si].routed_ids[sl].push(qid);
                }
            }
        }

        // Fan out: every overlapped shard executes its sub-plan in
        // parallel on the worker pool; `par_map_collect_mut` returns the
        // per-shard outcomes in shard order (its deterministic-ordering
        // guarantee), so the merge below never depends on worker timing.
        let slice_params: Vec<SearchParams> = slices.iter().map(|(p, _)| *p).collect();
        let mut pairs: Vec<(&mut Shard<'a>, ShardJob)> = self.shards.iter_mut().zip(jobs).collect();
        let fan_start_ms = tel.as_ref().map_or(0.0, |t| t.now_ms());
        let outcomes = par_map_collect_mut(&mut pairs, |_, (shard, job)| {
            Telemetry::suppressed(|| {
                if job.queries.is_empty() {
                    return None;
                }
                // Rebuild the shard-local plan: slice sl covers the local
                // launch indices of its routed queries (slice-major order).
                let mut local_slices: Vec<PlanSlice> = Vec::new();
                let mut next = 0u32;
                for (sl, routed) in job.routed_ids.iter().enumerate() {
                    if routed.is_empty() {
                        continue;
                    }
                    let ids: Vec<u32> = (next..next + routed.len() as u32).collect();
                    next += routed.len() as u32;
                    local_slices.push(PlanSlice::new(
                        QueryPlan::from_params(slice_params[sl]),
                        ids,
                    ));
                }
                let local_plan = if local_slices.len() == 1 {
                    let only = local_slices.pop().expect("one slice");
                    only.plan
                } else {
                    QueryPlan::Batch(local_slices)
                };
                Some(shard.index.query_with(&job.queries, &local_plan, overrides))
            })
        });
        let fan_end_ms = tel.as_ref().map_or(0.0, |t| t.now_ms());

        // Collect per-shard results (propagating the first error), the
        // timing, and a (query id → local launch index) map per shard.
        let mut shard_results: Vec<Option<(SearchResults, ShardJob)>> =
            Vec::with_capacity(pairs.len());
        let mut timing = ShardTiming {
            per_shard_ms: vec![0.0; pairs.len()],
            per_shard_traces: vec![PipelineTrace::default(); pairs.len()],
        };
        for (si, ((_, job), outcome)) in pairs.into_iter().zip(outcomes).enumerate() {
            match outcome {
                Some(Ok(results)) => {
                    timing.per_shard_ms[si] = results.total_time_ms();
                    timing.per_shard_traces[si] = results.trace.clone();
                    shard_results.push(Some((results, job)));
                }
                Some(Err(e)) => return Err(e),
                None => shard_results.push(None),
            }
        }
        let lookup: Vec<std::collections::HashMap<u32, u32>> = shard_results
            .iter()
            .map(|entry| {
                let mut map = std::collections::HashMap::new();
                if let Some((_, job)) = entry {
                    let mut next = 0u32;
                    for routed in &job.routed_ids {
                        for &qid in routed {
                            map.insert(qid, next);
                            next += 1;
                        }
                    }
                }
                map
            })
            .collect();

        // The shared `Gather`: per covered query, reassemble the
        // single-index result from the per-shard pipeline launches (mapped
        // to global point ids) through the canonical [`ShardMerge`]. Its
        // host time is billed to the trace's Gather slot below.
        let merge_start = std::time::Instant::now();
        let mut neighbors: Vec<Vec<u32>> = vec![Vec::new(); queries.len()];
        for (params, ids) in &slices {
            for &qid in ids.iter() {
                let q = queries[qid as usize];
                let mut lists: Vec<Vec<u32>> = Vec::new();
                for (si, entry) in shard_results.iter().enumerate() {
                    let Some((results, _)) = entry else { continue };
                    let Some(&local) = lookup[si].get(&qid) else {
                        continue;
                    };
                    lists.push(
                        results.neighbors[local as usize]
                            .iter()
                            .map(|&l| self.shards[si].global_ids[l as usize])
                            .collect(),
                    );
                }
                neighbors[qid as usize] = self.merge.gather_query(params, q, &self.points, &lists);
            }
        }
        let merge_host_ms = merge_start.elapsed().as_secs_f64() * 1e3;

        // Aggregate the bookkeeping: work (including the per-stage pipeline
        // trace) is summed across shards; the timing view exposes the
        // parallel critical path separately.
        let mut breakdown = TimeBreakdown::default();
        let mut search_metrics = LaunchMetrics::default();
        let mut fs_metrics = LaunchMetrics::default();
        let mut trace = PipelineTrace::default();
        let mut num_partitions = 0;
        let mut num_bundles = 0;
        for (results, _) in shard_results.iter().flatten() {
            let b = &results.breakdown;
            breakdown.data_ms += b.data_ms;
            breakdown.opt_ms += b.opt_ms;
            breakdown.bvh_ms += b.bvh_ms;
            breakdown.fs_ms += b.fs_ms;
            breakdown.search_ms += b.search_ms;
            search_metrics.merge_sequential(&results.search_metrics);
            fs_metrics.merge_sequential(&results.fs_metrics);
            trace.merge(&results.trace);
            num_partitions += results.num_partitions;
            num_bundles += results.num_bundles;
        }
        trace.charge_host_only(StageKind::Gather, merge_host_ms);

        // Synthesize the per-shard spans on this thread, in shard order
        // (deterministic regardless of worker scheduling), carrying each
        // shard's full per-stage breakdown — the skew signal the summed
        // `trace` above no longer has.
        if let Some(t) = &tel {
            t.counter_add("shard.fanout", timing.active_shards() as u64);
            // The load-balance signal, exported: critical path over ideal
            // parallel time for this fan-out (1.0 = perfectly balanced;
            // see [`ShardTiming::skew`]). A gauge, so a scrape sees the
            // most recent tick's balance.
            t.gauge_set("serve.shard.skew", timing.skew());
            if t.profiler_enabled() {
                t.profile(&rtnn_telemetry::ProfileSample {
                    plan_kind: plan.as_ref().kind_label(),
                    points: self.points.len(),
                    backend: self
                        .shards
                        .first()
                        .map_or("none", |s| s.index.backend().name()),
                    queries: queries.len() as u64,
                    stages: &trace.stage_device_ms(),
                });
            }
            for (si, results) in shard_results
                .iter()
                .enumerate()
                .filter_map(|(si, e)| e.as_ref().map(|(r, _)| (si, r)))
            {
                t.observe("shard.device_ms", results.trace.device_total_ms());
                if !t.spans_enabled() {
                    continue;
                }
                let mut attrs: Vec<(std::borrow::Cow<'static, str>, f64)> = vec![
                    ("shard".into(), si as f64),
                    ("points".into(), self.shards[si].global_ids.len() as f64),
                    ("device_ms".into(), results.trace.device_total_ms()),
                    ("total_ms".into(), results.total_time_ms()),
                ];
                for stage in results.trace.stages() {
                    let key = match stage.kind {
                        StageKind::Partition => "partition_device_ms",
                        StageKind::Schedule => "schedule_device_ms",
                        StageKind::Launch => "launch_device_ms",
                        StageKind::Gather => "gather_device_ms",
                    };
                    attrs.push((key.into(), stage.device_ms));
                }
                t.record_span(SpanRecord {
                    name: "serve.shard".into(),
                    parent: query_span.as_ref().and_then(|s| s.id()),
                    start_ms: fan_start_ms,
                    end_ms: fan_end_ms,
                    attrs,
                });
            }
            if let Some(span) = query_span.as_mut() {
                span.attr("queries", queries.len() as f64)
                    .attr("shards_active", timing.active_shards() as f64)
                    .attr("device_ms", trace.device_total_ms())
                    .attr("critical_path_ms", timing.critical_path_ms())
                    .attr_wall("merge_host_ms", merge_host_ms);
            }
        }
        drop(query_span);
        self.last_timing = timing;

        Ok(SearchResults {
            neighbors,
            breakdown,
            search_metrics,
            fs_metrics,
            num_partitions,
            num_bundles,
            trace,
        })
    }
}

impl TickExecutor for ShardedIndex<'_> {
    fn execute(
        &mut self,
        queries: &[Vec3],
        plan: &QueryPlan,
    ) -> Result<SearchResults, SearchError> {
        self.query(queries, plan)
    }

    fn execute_with(
        &mut self,
        queries: &[Vec3],
        plan: &QueryPlan,
        overrides: StageOverrides<'_>,
    ) -> Result<SearchResults, SearchError> {
        self.query_with(queries, plan, overrides)
    }

    fn tuner_signature(&self) -> Option<(usize, &'static str)> {
        // The logical index's coordinates — total points, the (shared)
        // backend — so a sharded deployment tunes under the same signature
        // the equivalent unsharded index would.
        let backend = self.shards.first()?.index.backend().name();
        Some((self.points.len(), backend))
    }

    fn calibrated_cost(&self) -> Option<CostCoefficients> {
        let shard = self.shards.first()?;
        Some(CostCoefficients::calibrate(shard.index.backend().device()))
    }

    fn last_shard_skew(&self) -> f64 {
        self.last_timing.skew()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtnn::GpusimBackend;
    use rtnn_gpusim::Device;

    /// A hashed pseudo-random cloud: full-mantissa coordinates, so exact
    /// distance ties (the one case the KNN merge contract excludes) do
    /// not occur — unlike a modulo-lattice cloud, which has equidistant
    /// pairs.
    fn cloud(n: usize) -> Vec<Vec3> {
        let coord = |i: u64, axis: u64| {
            let mut h = i
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(axis.wrapping_mul(0xD1B5_4A32_D192_ED03));
            h ^= h >> 33;
            h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            h ^= h >> 33;
            (h >> 40) as f32 / (1u64 << 24) as f32 * 9.0
        };
        (0..n as u64)
            .map(|i| Vec3::new(coord(i, 1), coord(i, 2), coord(i, 3)))
            .collect()
    }

    #[test]
    fn shards_partition_the_cloud() {
        let device = Device::rtx_2080();
        let backend = GpusimBackend::new(&device);
        let points = cloud(500);
        let sharded = ShardedIndex::build(&backend, &points, EngineConfig::default(), 4);
        assert_eq!(sharded.num_shards(), 4);
        assert_eq!(sharded.len(), 500);
        assert_eq!(sharded.shard_sizes().iter().sum::<usize>(), 500);
        // Morton-range shards are balanced to within one chunk.
        let sizes = sharded.shard_sizes();
        assert!(sizes.iter().all(|&s| s == 125), "sizes: {sizes:?}");
    }

    #[test]
    fn sharded_results_match_the_unsharded_index() {
        let device = Device::rtx_2080();
        let backend = GpusimBackend::new(&device);
        let points = cloud(600);
        let queries: Vec<Vec3> = points.iter().step_by(7).copied().collect();
        let mut reference = Index::build(&backend, &points[..], EngineConfig::default());
        for shards in [1, 2, 5] {
            let mut sharded =
                ShardedIndex::build(&backend, &points, EngineConfig::default(), shards);
            for plan in [
                QueryPlan::knn(1.4, 6),
                QueryPlan::range(1.1, 100_000),
                QueryPlan::Batch(vec![
                    PlanSlice::new(
                        QueryPlan::knn(1.0, 4),
                        (0..queries.len() as u32 / 2).collect(),
                    ),
                    PlanSlice::new(
                        QueryPlan::range(1.6, 100_000),
                        (queries.len() as u32 / 2..queries.len() as u32).collect(),
                    ),
                ]),
            ] {
                let expected = reference.query(&queries, &plan).unwrap();
                let got = sharded.query(&queries, &plan).unwrap();
                assert_eq!(
                    got.neighbors, expected.neighbors,
                    "{shards} shards, plan {plan:?}"
                );
            }
            let timing = sharded.last_timing();
            assert_eq!(timing.per_shard_ms.len(), sharded.num_shards());
            assert!(timing.critical_path_ms() > 0.0);
            assert!(timing.total_ms() >= timing.critical_path_ms());
        }
    }

    #[test]
    fn warm_prebuilds_every_shard_before_the_first_tick() {
        let device = Device::rtx_2080();
        let backend = GpusimBackend::new(&device);
        let points = cloud(600);
        let queries: Vec<Vec3> = points.iter().step_by(11).copied().collect();
        let plan = QueryPlan::knn(1.4, 6);

        let mut cold = ShardedIndex::build(&backend, &points, EngineConfig::default(), 4);
        let mut warmed = ShardedIndex::build(&backend, &points, EngineConfig::default(), 4);
        let built = warmed.warm(&plan).unwrap();
        assert!(built > 0.0, "cold-start warm-up builds on every shard");
        assert_eq!(warmed.warm(&plan).unwrap(), 0.0, "second warm is free");

        // Warming changes when structures are built, never what queries
        // return.
        let expected = cold.query(&queries, &plan).unwrap();
        let got = warmed.query(&queries, &plan).unwrap();
        assert_eq!(got.neighbors, expected.neighbors);
        // The next round on the warmed index amortises every build.
        let next = warmed.query(&queries, &plan).unwrap();
        assert_eq!(next.breakdown.bvh_ms, 0.0);
    }

    #[test]
    fn routing_skips_shards_outside_the_search_sphere() {
        let device = Device::rtx_2080();
        let backend = GpusimBackend::new(&device);
        let points = cloud(600);
        let mut sharded = ShardedIndex::build(&backend, &points, EngineConfig::default(), 6);
        // A tight query in one corner of the cloud cannot touch every
        // Morton-range shard.
        let queries = vec![points[0]];
        sharded.query(&queries, &QueryPlan::knn(0.5, 4)).unwrap();
        let timing = sharded.last_timing();
        assert!(
            timing.active_shards() < sharded.num_shards(),
            "a local query must not fan out to all shards: {:?}",
            timing.per_shard_ms
        );
    }

    #[test]
    fn per_shard_spans_carry_stage_timings() {
        use rtnn_telemetry::TelemetryLevel;
        let device = Device::rtx_2080();
        let backend = GpusimBackend::new(&device);
        let points = cloud(600);
        let queries: Vec<Vec3> = points.iter().step_by(9).copied().collect();
        let mut sharded = ShardedIndex::build(&backend, &points, EngineConfig::default(), 4);
        let sink = Telemetry::new(TelemetryLevel::Full);
        Telemetry::scoped(&sink, || {
            sharded.query(&queries, &QueryPlan::knn(1.4, 6)).unwrap();
        });
        let snap = sink.snapshot();
        snap.check_nesting(1e-6).unwrap();

        let timing = sharded.last_timing();
        assert_eq!(timing.per_shard_traces.len(), sharded.num_shards());
        assert!(timing.skew() >= 1.0 - 1e-9);

        // One query root; one serve.shard child per active shard, each
        // carrying the per-stage device breakdown the summed trace drops.
        let root = snap.spans_named("shard.query.knn").next().unwrap();
        let shard_spans: Vec<_> = snap.spans_named("serve.shard").collect();
        assert_eq!(shard_spans.len(), timing.active_shards());
        for s in &shard_spans {
            assert_eq!(s.parent, Some(root.id));
            let si = s.attr("shard").unwrap() as usize;
            assert_eq!(
                s.attr("device_ms"),
                Some(timing.per_shard_traces[si].device_total_ms())
            );
            assert!(s.attr("launch_device_ms").is_some());
            assert!(s.attr("schedule_device_ms").is_some());
        }
        assert_eq!(
            snap.metrics.counter("shard.queries"),
            Some(1),
            "workers are suppressed: exactly one query recorded"
        );
        assert_eq!(
            snap.metrics.histogram("shard.device_ms").unwrap().count,
            timing.active_shards() as u64
        );
    }

    #[test]
    fn invalid_plans_and_empty_inputs() {
        let device = Device::rtx_2080();
        let backend = GpusimBackend::new(&device);
        let points = cloud(100);
        let mut sharded = ShardedIndex::build(&backend, &points, EngineConfig::default(), 3);
        assert!(matches!(
            sharded.query(&[Vec3::ZERO], &QueryPlan::knn(-1.0, 4)),
            Err(SearchError::InvalidPlan(_))
        ));
        let empty = sharded.query(&[], &QueryPlan::knn(1.0, 4)).unwrap();
        assert!(empty.neighbors.is_empty());

        let mut none = ShardedIndex::build(&backend, &[], EngineConfig::default(), 3);
        assert!(none.is_empty());
        assert_eq!(none.num_shards(), 1);
        let results = none
            .query(&[Vec3::ZERO], &QueryPlan::range(1.0, 8))
            .unwrap();
        assert_eq!(results.neighbors, vec![Vec::<u32>::new()]);
    }

    #[test]
    fn shard_count_is_clamped() {
        let device = Device::rtx_2080();
        let backend = GpusimBackend::new(&device);
        let points = cloud(3);
        let sharded = ShardedIndex::build(&backend, &points, EngineConfig::default(), 64);
        assert_eq!(sharded.num_shards(), 3);
        let zero = ShardedIndex::build(&backend, &points, EngineConfig::default(), 0);
        assert_eq!(zero.num_shards(), 1);
    }
}
