//! Serving statistics: per-request latency distribution and per-tick
//! throughput accounting, shared by the live service and the virtual-time
//! load harness.
//!
//! Latencies are held in an [`rtnn_telemetry::Histogram`] — the same exact
//! log-bucketed type the telemetry layer snapshots — so the workspace keeps
//! one percentile implementation (nearest-rank, re-exported here as
//! [`percentile`]) and the service's p50/p99/p999 agree with what
//! `ServiceClient::telemetry_snapshot()` reports.

pub use rtnn_telemetry::percentile;
use rtnn_telemetry::{Histogram, HistogramSnapshot};

/// Aggregate statistics of a service run (live or virtual-time).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceStats {
    /// Execution ticks dispatched.
    pub ticks: usize,
    /// Requests served (including failed ones).
    pub requests: usize,
    /// Requests that shared a tick with at least one other request.
    pub coalesced_requests: usize,
    /// Largest number of requests fused into one tick.
    pub max_tick_requests: usize,
    /// Total queries launched.
    pub queries: usize,
    /// Total simulated milliseconds of tick execution.
    pub sim_ms: f64,
    /// Per-request latency distribution. Microseconds of wall time for the
    /// live service; virtual milliseconds for the load harness.
    pub latencies: Histogram,
}

impl ServiceStats {
    /// Record one tick of `requests` requests / `queries` queries costing
    /// `sim_ms` simulated milliseconds.
    pub fn record_tick(&mut self, requests: usize, queries: usize, sim_ms: f64) {
        self.ticks += 1;
        self.requests += requests;
        if requests > 1 {
            self.coalesced_requests += requests;
        }
        self.max_tick_requests = self.max_tick_requests.max(requests);
        self.queries += queries;
        self.sim_ms += sim_ms;
    }

    /// Record one request's latency (same unit across the run).
    pub fn record_latency(&mut self, latency: f64) {
        self.latencies.record(latency);
    }

    /// Mean requests per tick.
    pub fn mean_tick_requests(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.requests as f64 / self.ticks as f64
        }
    }

    /// Latency percentile (unit matches [`Self::latencies`]); exact
    /// nearest-rank, so tail quantiles like `0.999` are real observations.
    pub fn latency_percentile(&self, q: f64) -> f64 {
        self.latencies.percentile(q)
    }

    /// The p999 tail latency (unit matches [`Self::latencies`]).
    pub fn latency_p999(&self) -> f64 {
        self.latencies.percentile(0.999)
    }

    /// Freeze the latency distribution: count/sum/min/max, exact
    /// p50/p99/p999, and the non-empty log buckets.
    pub fn latency_snapshot(&self) -> HistogramSnapshot {
        self.latencies.snapshot()
    }

    /// Requests per *simulated* second — the device-side throughput the
    /// coalescing comparison uses (wall time would measure the host).
    pub fn sim_qps(&self) -> f64 {
        if self.sim_ms <= 0.0 {
            0.0
        } else {
            self.requests as f64 / (self.sim_ms / 1e3)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let samples = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&samples, 0.0), 1.0);
        assert_eq!(percentile(&samples, 0.5), 2.0);
        assert_eq!(percentile(&samples, 0.75), 3.0);
        assert_eq!(percentile(&samples, 0.99), 4.0);
        assert_eq!(percentile(&samples, 1.0), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn tick_accounting() {
        let mut s = ServiceStats::default();
        s.record_tick(1, 10, 2.0);
        s.record_tick(3, 30, 4.0);
        s.record_latency(5.0);
        assert_eq!(s.ticks, 2);
        assert_eq!(s.requests, 4);
        assert_eq!(s.coalesced_requests, 3);
        assert_eq!(s.max_tick_requests, 3);
        assert_eq!(s.queries, 40);
        assert!((s.mean_tick_requests() - 2.0).abs() < 1e-12);
        assert!((s.sim_qps() - 4.0 / 6e-3).abs() < 1e-9);
    }

    #[test]
    fn latency_tail_goes_through_the_shared_histogram() {
        let mut s = ServiceStats::default();
        for i in 1..=1000 {
            s.record_latency(i as f64);
        }
        assert_eq!(s.latency_percentile(0.5), 500.0);
        assert_eq!(s.latency_percentile(0.99), 990.0);
        assert_eq!(s.latency_p999(), 999.0);
        let snap = s.latency_snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.p999, 999.0);
        // Same distribution, same stats: Histogram is comparable, which the
        // serve determinism suite relies on.
        let again = s.clone();
        assert_eq!(s, again);
    }
}
