//! Injectable time sources for the telemetry sink.
//!
//! Spans and events are stamped through a [`Clock`] owned by the sink, not
//! through `Instant::now()` directly, so the same producers serve two
//! regimes:
//!
//! * live serving uses a [`MonotonicClock`] (wall milliseconds since the
//!   sink was created);
//! * the virtual-time load harness uses a [`VirtualClock`] it advances by
//!   hand, which makes every recorded timestamp a deterministic function of
//!   the replayed schedule — same seed, same snapshot, on any machine.
//!
//! A sink whose clock [`is_virtual`](Clock::is_virtual) additionally drops
//! wall-measured attribute values (see `SpanGuard::attr_wall`), so nothing
//! host-timing-dependent can leak into a deterministic snapshot.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A time source producing milliseconds since an arbitrary epoch.
pub trait Clock: Send + Sync {
    /// Current time in milliseconds since the clock's epoch.
    fn now_ms(&self) -> f64;

    /// True for hand-advanced clocks whose readings are deterministic;
    /// sinks on a virtual clock refuse wall-measured values so their
    /// snapshots stay bit-reproducible.
    fn is_virtual(&self) -> bool {
        false
    }
}

/// Wall-clock milliseconds since construction.
#[derive(Debug)]
pub struct MonotonicClock {
    epoch: Instant,
}

impl MonotonicClock {
    /// A clock whose epoch is "now".
    pub fn new() -> Self {
        MonotonicClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ms(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e3
    }
}

/// A hand-advanced clock for deterministic replays: reads return whatever
/// the owner last [`set_ms`](Self::set_ms). Shared as an `Arc` between the
/// advancing loop and the telemetry sink; stores f64 bits in an atomic so
/// readers never block the loop.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_bits: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock at t = 0 ms.
    pub fn new() -> Self {
        VirtualClock {
            now_bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }

    /// Move the clock to `now_ms` (virtual milliseconds). Monotonicity is
    /// the owner's responsibility — the replay loop only moves forward.
    pub fn set_ms(&self, now_ms: f64) {
        self.now_bits.store(now_ms.to_bits(), Ordering::Relaxed);
    }
}

impl Clock for VirtualClock {
    fn now_ms(&self) -> f64 {
        f64::from_bits(self.now_bits.load(Ordering::Relaxed))
    }

    fn is_virtual(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_advances() {
        let c = MonotonicClock::new();
        let a = c.now_ms();
        let b = c.now_ms();
        assert!(b >= a && a >= 0.0);
        assert!(!c.is_virtual());
    }

    #[test]
    fn virtual_clock_reads_what_was_set() {
        let c = VirtualClock::new();
        assert_eq!(c.now_ms(), 0.0);
        c.set_ms(12.5);
        assert_eq!(c.now_ms(), 12.5);
        assert!(c.is_virtual());
    }
}
