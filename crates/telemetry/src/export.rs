//! Exporters: JSONL trace dump, Prometheus-style text snapshot, and a
//! minimal JSON parser for the round-trip check.
//!
//! The workspace's `serde_json` shim can only *serialize*, so the
//! parse-back half of the JSONL round-trip (a nightly-CI gate) is a small
//! recursive-descent parser here. It handles exactly the JSON this module
//! emits — objects, arrays, strings with escapes, numbers, booleans, null —
//! which is all of standard JSON anyway.

use std::fmt::Write as _;

use crate::span::{Event, FinishedSpan};
use crate::TelemetrySnapshot;

/// Format an `f64` as a JSON number. Uses Rust's shortest round-trip
/// representation; non-finite values (only the `+Inf` histogram bucket
/// bound in practice) become JSON strings, since JSON has no infinity.
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` prints integral floats without a dot ("5"), which is still a
        // valid JSON number and parses back to the same f64.
        s
    } else if v > 0.0 {
        "\"+Inf\"".to_string()
    } else if v < 0.0 {
        "\"-Inf\"".to_string()
    } else {
        "\"NaN\"".to_string()
    }
}

/// Escape a string for inclusion in a JSON document (without quotes).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_attrs(attrs: &[(std::borrow::Cow<'static, str>, f64)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", json_escape(k), json_f64(*v));
    }
    out.push('}');
    out
}

fn span_line(span: &FinishedSpan) -> String {
    let parent = match span.parent {
        Some(p) => p.0.to_string(),
        None => "null".to_string(),
    };
    format!(
        "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"name\":\"{}\",\"start_ms\":{},\"end_ms\":{},\"attrs\":{}}}",
        span.id.0,
        parent,
        json_escape(&span.name),
        json_f64(span.start_ms),
        json_f64(span.end_ms),
        json_attrs(&span.attrs),
    )
}

fn event_line(event: &Event) -> String {
    format!(
        "{{\"type\":\"event\",\"at_ms\":{},\"name\":\"{}\",\"attrs\":{}}}",
        json_f64(event.at_ms),
        json_escape(&event.name),
        json_attrs(&event.attrs),
    )
}

/// Serialize a snapshot as JSON Lines: one `meta` record, then one record
/// per counter, gauge, histogram, span and event, in snapshot order.
pub fn to_jsonl(snapshot: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"type\":\"meta\",\"level\":\"{}\",\"deterministic\":{},\"dropped_spans\":{},\"dropped_events\":{}}}",
        snapshot.level.as_str(),
        snapshot.deterministic,
        snapshot.dropped_spans,
        snapshot.dropped_events,
    );
    for (name, value) in &snapshot.metrics.counters {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{value}}}",
            json_escape(name)
        );
    }
    for (name, value) in &snapshot.metrics.gauges {
        let _ = writeln!(
            out,
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
            json_escape(name),
            json_f64(*value)
        );
    }
    for (name, hist) in &snapshot.metrics.histograms {
        let mut buckets = String::from("[");
        for (i, (le, cum)) in hist.buckets.iter().enumerate() {
            if i > 0 {
                buckets.push(',');
            }
            let _ = write!(buckets, "[{},{cum}]", json_f64(*le));
        }
        buckets.push(']');
        let _ = writeln!(
            out,
            "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p99\":{},\"p999\":{},\"buckets\":{}}}",
            json_escape(name),
            hist.count,
            json_f64(hist.sum),
            json_f64(hist.min),
            json_f64(hist.max),
            json_f64(hist.p50),
            json_f64(hist.p99),
            json_f64(hist.p999),
            buckets,
        );
    }
    for span in &snapshot.spans {
        let _ = writeln!(out, "{}", span_line(span));
    }
    for event in &snapshot.events {
        let _ = writeln!(out, "{}", event_line(event));
    }
    out
}

/// Map a dotted metric name onto the Prometheus charset and namespace:
/// `serve.latency.ms` → `rtnn_serve_latency_ms`.
fn prometheus_name(name: &str) -> String {
    let mut out = String::from("rtnn_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn prom_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v > 0.0 {
        "+Inf".to_string()
    } else {
        "-Inf".to_string()
    }
}

/// Escape a label *value* per the Prometheus text exposition format:
/// backslash, double quote and newline must be escaped (`\\`, `\"`, `\n`);
/// everything else passes through. Without this, an event name carrying a
/// quote or newline would break the sample line it is embedded in.
fn prom_label_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Serialize the metric side of a snapshot as Prometheus text exposition:
/// counters and gauges as single samples, histograms as cumulative
/// `_bucket{le=...}` series plus `_sum`/`_count` and exact
/// `{quantile=...}` summary samples, and the event log aggregated into
/// per-name `rtnn_events_total{name=...}` counters (label values escaped
/// per the exposition format).
pub fn to_prometheus(snapshot: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.metrics.counters {
        let prom = prometheus_name(name);
        let _ = writeln!(out, "# TYPE {prom} counter");
        let _ = writeln!(out, "{prom} {value}");
    }
    for (name, value) in &snapshot.metrics.gauges {
        let prom = prometheus_name(name);
        let _ = writeln!(out, "# TYPE {prom} gauge");
        let _ = writeln!(out, "{prom} {}", prom_f64(*value));
    }
    for (name, hist) in &snapshot.metrics.histograms {
        let prom = prometheus_name(name);
        let _ = writeln!(out, "# TYPE {prom} histogram");
        let mut saw_inf = false;
        for (le, cum) in &hist.buckets {
            saw_inf |= le.is_infinite();
            let _ = writeln!(out, "{prom}_bucket{{le=\"{}\"}} {cum}", prom_f64(*le));
        }
        if !saw_inf {
            let _ = writeln!(out, "{prom}_bucket{{le=\"+Inf\"}} {}", hist.count);
        }
        let _ = writeln!(out, "{prom}_sum {}", prom_f64(hist.sum));
        let _ = writeln!(out, "{prom}_count {}", hist.count);
        for (q, v) in [("0.5", hist.p50), ("0.99", hist.p99), ("0.999", hist.p999)] {
            let _ = writeln!(out, "{prom}{{quantile=\"{q}\"}} {}", prom_f64(v));
        }
    }
    if !snapshot.events.is_empty() {
        let mut counts: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
        for event in &snapshot.events {
            *counts.entry(event.name.as_ref()).or_default() += 1;
        }
        let _ = writeln!(out, "# TYPE rtnn_events_total counter");
        for (name, count) in counts {
            let _ = writeln!(
                out,
                "rtnn_events_total{{name=\"{}\"}} {count}",
                prom_label_escape(name)
            );
        }
    }
    out
}

/// A parsed JSON value (the parser half of the JSONL round-trip).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, fields in document order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Field lookup on an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("JSON parse error at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(JsonValue::Object(fields)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}'"));
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(JsonValue::Array(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']'"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        if self.pos + 4 > self.bytes.len() {
                            return Err(self.err("truncated \\u escape"));
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| self.err("non-UTF8 \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| self.err("invalid \\u escape"))?;
                        self.pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the multi-byte UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let width = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    if start + width > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + width])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = start + width;
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err(&format!("invalid number {text:?}")))
    }
}

/// Parse one JSON document.
pub fn parse_json(input: &str) -> Result<JsonValue, String> {
    let mut parser = Parser::new(input);
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing garbage after JSON value"));
    }
    Ok(value)
}

/// Parse a JSON Lines document: one value per non-empty line.
pub fn parse_jsonl(input: &str) -> Result<Vec<JsonValue>, String> {
    let mut records = Vec::new();
    for (i, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        records.push(parse_json(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(records)
}

/// Serialize `snapshot` to JSONL, parse it back, and verify the parsed
/// records reproduce the snapshot: same meta, same counter values, same
/// span ids/parents/intervals, same record counts. This is the nightly-CI
/// exporter round-trip gate.
pub fn verify_jsonl_roundtrip(snapshot: &TelemetrySnapshot) -> Result<(), String> {
    let text = to_jsonl(snapshot);
    let records = parse_jsonl(&text)?;
    fn of_type<'a>(records: &'a [JsonValue], t: &'a str) -> impl Iterator<Item = &'a JsonValue> {
        records
            .iter()
            .filter(move |r| r.get("type").and_then(JsonValue::as_str) == Some(t))
    }

    let meta = of_type(&records, "meta")
        .next()
        .ok_or("round-trip lost the meta record")?;
    if meta.get("level").and_then(JsonValue::as_str) != Some(snapshot.level.as_str()) {
        return Err("round-trip changed the telemetry level".into());
    }

    let expect_count = |t: &str, want: usize| {
        let got = of_type(&records, t).count();
        if got == want {
            Ok(())
        } else {
            Err(format!("round-trip {t} records: got {got}, want {want}"))
        }
    };
    expect_count("counter", snapshot.metrics.counters.len())?;
    expect_count("gauge", snapshot.metrics.gauges.len())?;
    expect_count("histogram", snapshot.metrics.histograms.len())?;
    expect_count("span", snapshot.spans.len())?;
    expect_count("event", snapshot.events.len())?;

    for (record, span) in of_type(&records, "span").zip(snapshot.spans.iter()) {
        let id = record.get("id").and_then(JsonValue::as_f64);
        let start = record.get("start_ms").and_then(JsonValue::as_f64);
        let end = record.get("end_ms").and_then(JsonValue::as_f64);
        let name = record.get("name").and_then(JsonValue::as_str);
        if id != Some(span.id.0 as f64)
            || start != Some(span.start_ms)
            || end != Some(span.end_ms)
            || name != Some(&span.name)
        {
            return Err(format!("round-trip altered span {}", span.id));
        }
        let parent_ok = match span.parent {
            Some(p) => record.get("parent").and_then(JsonValue::as_f64) == Some(p.0 as f64),
            None => record.get("parent") == Some(&JsonValue::Null),
        };
        if !parent_ok {
            return Err(format!("round-trip altered the parent of span {}", span.id));
        }
    }

    for (record, (name, value)) in
        of_type(&records, "counter").zip(snapshot.metrics.counters.iter())
    {
        if record.get("name").and_then(JsonValue::as_str) != Some(name)
            || record.get("value").and_then(JsonValue::as_f64) != Some(*value as f64)
        {
            return Err(format!("round-trip altered counter {name:?}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structures() {
        assert_eq!(parse_json("null").unwrap(), JsonValue::Null);
        assert_eq!(parse_json("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse_json("-2.5e2").unwrap(), JsonValue::Number(-250.0));
        assert_eq!(
            parse_json("\"a\\n\\\"b\\u0041\"").unwrap(),
            JsonValue::String("a\n\"bA".to_string())
        );
        let v = parse_json(r#"{"a":[1,2,{"b":null}],"c":"d"}"#).unwrap();
        assert_eq!(v.get("c").and_then(JsonValue::as_str), Some("d"));
        let arr = v.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(arr[1], JsonValue::Number(2.0));
        assert_eq!(arr[2].get("b"), Some(&JsonValue::Null));
    }

    #[test]
    fn parses_unicode_strings() {
        let v = parse_json("\"héllo → 世界\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo → 世界"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "\"x", "{\"a\" 1}", "12 34", "truth"] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn jsonl_reports_the_failing_line() {
        let err = parse_jsonl("{\"ok\":1}\n{broken\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn numbers_round_trip_through_the_emitted_format() {
        for v in [0.0, 5.0, -1.25, 1e-9, 123456.789, f64::MAX] {
            let text = json_f64(v);
            let back = parse_json(&text).unwrap().as_f64().unwrap();
            assert_eq!(back, v, "text {text}");
        }
        assert_eq!(json_f64(f64::INFINITY), "\"+Inf\"");
    }

    #[test]
    fn prometheus_names_are_sanitized() {
        assert_eq!(prometheus_name("serve.latency.ms"), "rtnn_serve_latency_ms");
        assert_eq!(prometheus_name("a-b c"), "rtnn_a_b_c");
        assert_eq!(prometheus_name("slo.breach-p99"), "rtnn_slo_breach_p99");
    }

    #[test]
    fn prometheus_label_values_escape_per_the_exposition_format() {
        assert_eq!(prom_label_escape("plain"), "plain");
        assert_eq!(
            prom_label_escape("quote \" slash \\ line\nbreak"),
            "quote \\\" slash \\\\ line\\nbreak"
        );
    }

    #[test]
    fn prometheus_event_labels_roundtrip_through_escaping() {
        // Un-escape per the exposition format — the consumer half of the
        // round-trip, kept local to the test on purpose (the crate only
        // needs the emit direction).
        fn prom_label_unescape(value: &str) -> String {
            let mut out = String::new();
            let mut chars = value.chars();
            while let Some(c) = chars.next() {
                if c != '\\' {
                    out.push(c);
                    continue;
                }
                match chars.next() {
                    Some('\\') => out.push('\\'),
                    Some('"') => out.push('"'),
                    Some('n') => out.push('\n'),
                    Some(other) => {
                        out.push('\\');
                        out.push(other);
                    }
                    None => out.push('\\'),
                }
            }
            out
        }

        let hostile = "shed \"tenant-7\"\nslow\\consumer";
        let t = crate::Telemetry::new(crate::TelemetryLevel::Full);
        t.event(hostile.to_string(), &[]);
        t.event(hostile.to_string(), &[]);
        t.event("serve.shed", &[]);
        let prom = t.snapshot().to_prometheus();
        // Every emitted line stays a single line (the raw \n was escaped).
        assert!(prom.lines().all(|l| !l.is_empty()));
        assert!(prom.contains("# TYPE rtnn_events_total counter"));
        let mut labeled: Vec<(String, u64)> = prom
            .lines()
            .filter_map(|l| {
                let rest = l.strip_prefix("rtnn_events_total{name=\"")?;
                let (value, tail) = rest.split_once("\"} ")?;
                Some((prom_label_unescape(value), tail.parse().unwrap()))
            })
            .collect();
        labeled.sort();
        assert_eq!(
            labeled,
            vec![("serve.shed".to_string(), 1), (hostile.to_string(), 2)],
            "escaped label values parse back to the original event names"
        );
    }
}
