//! SLO flight recorder: a bounded ring of recent request traces plus a
//! rolling-window latency monitor that pins exemplars when a target is
//! breached.
//!
//! The serving layer records one [`RequestTrace`] per answered request —
//! its latency, the per-stage device breakdown of the tick that served it,
//! and the shard [`skew`](RequestTrace::shard_skew) of that tick. The
//! [`FlightRecorder`] keeps the most recent traces in a ring buffer (the
//! "flight recorder" proper) and feeds every latency into an embedded
//! [`SloMonitor`]. When the monitored quantile of the rolling window
//! crosses the target, the recorder emits a typed [`SloEvent::Breach`] and
//! **pins** the worst trace in the window as an exemplar, so a p99 spike
//! is attributable after the fact to Schedule/Partition/Launch/Gather or a
//! hot shard — without keeping every trace forever.
//!
//! Everything here is plain deterministic bookkeeping over values the
//! caller supplies: driven from a virtual-time replay, two identical runs
//! produce identical events and pin identical exemplars (pinned by the
//! serve load harness's determinism suite).

use std::collections::VecDeque;

use crate::export::{json_escape, json_f64};
use crate::metrics::percentile;

/// Default capacity of the recent-trace ring.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;
/// Most exemplars a recorder pins before dropping new ones (breach storms
/// must not grow memory without bound).
pub const MAX_PINNED: usize = 64;

/// One served request, as the flight recorder keeps it.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTrace {
    /// Request span name (`serve.request.knn` / `.range` / `.batch`).
    pub name: String,
    /// Sojourn latency in milliseconds (virtual milliseconds in the load
    /// harness, wall milliseconds on the live service).
    pub latency_ms: f64,
    /// Completion timestamp on the service clock, in milliseconds.
    pub end_ms: f64,
    /// Queries in the request.
    pub queries: u64,
    /// Requests fused into the tick that served this one.
    pub tick_requests: u64,
    /// Per-stage `(label, device_ms)` breakdown of the serving tick, in
    /// pipeline order (empty when the executor reported no trace).
    pub stage_device_ms: Vec<(String, f64)>,
    /// `ShardTiming::skew` of the serving tick (from `rtnn-serve`):
    /// critical path over ideal parallel time, 1.0 when perfectly
    /// balanced, 0.0 when unsharded.
    pub shard_skew: f64,
}

impl RequestTrace {
    /// The stage with the largest device charge, if any stage charged
    /// anything — the first answer to "where did the time go?".
    pub fn dominant_stage(&self) -> Option<(&str, f64)> {
        self.stage_device_ms
            .iter()
            .filter(|(_, ms)| *ms > 0.0)
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite stage charges"))
            .map(|(name, ms)| (name.as_str(), *ms))
    }

    fn jsonl_line(&self, kind: &str) -> String {
        use std::fmt::Write as _;
        let mut stages = String::from("[");
        for (i, (label, ms)) in self.stage_device_ms.iter().enumerate() {
            if i > 0 {
                stages.push(',');
            }
            let _ = write!(stages, "[\"{}\",{}]", json_escape(label), json_f64(*ms));
        }
        stages.push(']');
        format!(
            "{{\"type\":\"{kind}\",\"name\":\"{}\",\"latency_ms\":{},\"end_ms\":{},\"queries\":{},\"tick_requests\":{},\"shard_skew\":{},\"stage_device_ms\":{}}}",
            json_escape(&self.name),
            json_f64(self.latency_ms),
            json_f64(self.end_ms),
            self.queries,
            self.tick_requests,
            json_f64(self.shard_skew),
            stages,
        )
    }
}

/// A rolling-window latency target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// The watched quantile (e.g. `0.99`).
    pub quantile: f64,
    /// The target for that quantile, in milliseconds.
    pub target_ms: f64,
    /// Rolling window length, in requests.
    pub window: usize,
    /// Don't judge until the window holds at least this many samples (a
    /// one-request "p99" is noise, not a breach).
    pub min_samples: usize,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            quantile: 0.99,
            target_ms: 10.0,
            window: 128,
            min_samples: 16,
        }
    }
}

impl SloConfig {
    /// A p99 target of `target_ms` with default window sizing.
    pub fn p99(target_ms: f64) -> Self {
        SloConfig {
            target_ms,
            ..SloConfig::default()
        }
    }
}

/// What one observation did to the monitor's breach state.
#[derive(Debug, Clone, Copy, PartialEq)]
enum SloTransition {
    Breached { observed_ms: f64 },
    Recovered { observed_ms: f64 },
}

/// Watches a rolling window of latencies against an [`SloConfig`] and
/// reports under→over / over→under transitions.
#[derive(Debug, Clone)]
pub struct SloMonitor {
    config: SloConfig,
    window: VecDeque<f64>,
    breached: bool,
}

impl SloMonitor {
    /// A monitor on `config`, initially un-breached with an empty window.
    pub fn new(config: SloConfig) -> Self {
        SloMonitor {
            config,
            window: VecDeque::with_capacity(config.window.max(1)),
            breached: false,
        }
    }

    /// The monitored target.
    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// True while the watched quantile is over target.
    pub fn is_breached(&self) -> bool {
        self.breached
    }

    /// The watched quantile over the current window (0 while empty).
    pub fn observed_ms(&self) -> f64 {
        let samples: Vec<f64> = self.window.iter().copied().collect();
        percentile(&samples, self.config.quantile)
    }

    /// Samples currently in the window.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    fn observe(&mut self, latency_ms: f64) -> Option<SloTransition> {
        if self.window.len() == self.config.window.max(1) {
            self.window.pop_front();
        }
        self.window.push_back(latency_ms);
        if self.window.len() < self.config.min_samples.max(1) {
            return None;
        }
        let observed_ms = self.observed_ms();
        let over = observed_ms > self.config.target_ms;
        match (self.breached, over) {
            (false, true) => {
                self.breached = true;
                Some(SloTransition::Breached { observed_ms })
            }
            (true, false) => {
                self.breached = false;
                Some(SloTransition::Recovered { observed_ms })
            }
            _ => None,
        }
    }
}

/// A typed SLO transition, emitted by the recorder in observation order.
#[derive(Debug, Clone, PartialEq)]
pub enum SloEvent {
    /// The watched quantile crossed over the target.
    Breach {
        /// Service-clock timestamp of the request that tipped the window.
        at_ms: f64,
        /// The quantile's value over the window at the breach.
        observed_ms: f64,
        /// The configured target.
        target_ms: f64,
        /// The watched quantile.
        quantile: f64,
        /// Samples in the window when judged.
        window_len: usize,
        /// Index into [`FlightRecorder::pinned`] of the exemplar pinned
        /// for this breach (`None` once [`MAX_PINNED`] is reached).
        exemplar: Option<usize>,
    },
    /// The watched quantile came back under the target.
    Recover {
        /// Service-clock timestamp of the request that restored the window.
        at_ms: f64,
        /// The quantile's value over the window at recovery.
        observed_ms: f64,
        /// The configured target.
        target_ms: f64,
        /// The watched quantile.
        quantile: f64,
    },
}

impl SloEvent {
    fn jsonl_line(&self) -> String {
        match self {
            SloEvent::Breach {
                at_ms,
                observed_ms,
                target_ms,
                quantile,
                window_len,
                exemplar,
            } => format!(
                "{{\"type\":\"slo_breach\",\"at_ms\":{},\"observed_ms\":{},\"target_ms\":{},\"quantile\":{},\"window_len\":{window_len},\"exemplar\":{}}}",
                json_f64(*at_ms),
                json_f64(*observed_ms),
                json_f64(*target_ms),
                json_f64(*quantile),
                exemplar.map_or("null".to_string(), |i| i.to_string()),
            ),
            SloEvent::Recover {
                at_ms,
                observed_ms,
                target_ms,
                quantile,
            } => format!(
                "{{\"type\":\"slo_recover\",\"at_ms\":{},\"observed_ms\":{},\"target_ms\":{},\"quantile\":{}}}",
                json_f64(*at_ms),
                json_f64(*observed_ms),
                json_f64(*target_ms),
                json_f64(*quantile),
            ),
        }
    }
}

/// An exemplar pinned at a breach: the worst trace in the breaching window,
/// kept past ring eviction.
#[derive(Debug, Clone, PartialEq)]
pub struct PinnedExemplar {
    /// Index into [`FlightRecorder::events`] of the breach that pinned it.
    pub event: usize,
    /// The pinned trace.
    pub trace: RequestTrace,
}

/// The flight recorder: recent-trace ring + SLO monitor + pinned exemplars.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    ring: VecDeque<RequestTrace>,
    dropped: u64,
    monitor: Option<SloMonitor>,
    events: Vec<SloEvent>,
    pinned: Vec<PinnedExemplar>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder keeping the `capacity` most recent traces, with no SLO
    /// monitor (pure flight recording).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            ring: VecDeque::new(),
            dropped: 0,
            monitor: None,
            events: Vec::new(),
            pinned: Vec::new(),
        }
    }

    /// A recorder that also watches `slo` and pins exemplars on breach.
    pub fn with_slo(capacity: usize, slo: SloConfig) -> Self {
        let mut recorder = Self::new(capacity);
        recorder.monitor = Some(SloMonitor::new(slo));
        recorder
    }

    /// Record one served request: push it into the ring and feed its
    /// latency to the monitor; on an under→over transition, emit a
    /// [`SloEvent::Breach`] and pin the worst trace in the breaching
    /// window (ties broken toward the earliest, so replays pin
    /// deterministically).
    pub fn record(&mut self, trace: RequestTrace) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        let at_ms = trace.end_ms;
        self.ring.push_back(trace);
        let Some(monitor) = self.monitor.as_mut() else {
            return;
        };
        let latency_ms = self.ring.back().expect("just pushed").latency_ms;
        match monitor.observe(latency_ms) {
            Some(SloTransition::Breached { observed_ms }) => {
                let window_len = monitor.window_len();
                let config = *monitor.config();
                let exemplar = self.pin_worst_of_window(window_len);
                self.events.push(SloEvent::Breach {
                    at_ms,
                    observed_ms,
                    target_ms: config.target_ms,
                    quantile: config.quantile,
                    window_len,
                    exemplar,
                });
            }
            Some(SloTransition::Recovered { observed_ms }) => {
                let config = *monitor.config();
                self.events.push(SloEvent::Recover {
                    at_ms,
                    observed_ms,
                    target_ms: config.target_ms,
                    quantile: config.quantile,
                });
            }
            None => {}
        }
    }

    /// Pin the worst-latency trace among the last `window_len` ring
    /// entries (the monitor window, as far as the ring still holds it).
    fn pin_worst_of_window(&mut self, window_len: usize) -> Option<usize> {
        if self.pinned.len() >= MAX_PINNED {
            return None;
        }
        let start = self.ring.len().saturating_sub(window_len);
        let worst = self
            .ring
            .iter()
            .skip(start)
            // Strict > keeps the earliest of equal-latency traces.
            .fold(None::<&RequestTrace>, |best, t| match best {
                Some(b) if t.latency_ms > b.latency_ms => Some(t),
                None => Some(t),
                keep => keep,
            })?
            .clone();
        self.pinned.push(PinnedExemplar {
            event: self.events.len(),
            trace: worst,
        });
        Some(self.pinned.len() - 1)
    }

    /// The retained recent traces, oldest first.
    pub fn recent(&self) -> impl Iterator<Item = &RequestTrace> {
        self.ring.iter()
    }

    /// Traces evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Traces currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// SLO transitions, in observation order.
    pub fn events(&self) -> &[SloEvent] {
        &self.events
    }

    /// Exemplars pinned at breaches, in breach order.
    pub fn pinned(&self) -> &[PinnedExemplar] {
        &self.pinned
    }

    /// The embedded monitor, if one was configured.
    pub fn monitor(&self) -> Option<&SloMonitor> {
        self.monitor.as_ref()
    }

    /// Serialize as JSON Lines: one `flight_meta` record, then every SLO
    /// event, pinned exemplar and retained trace, in order. Parses back
    /// with [`parse_jsonl`](crate::parse_jsonl).
    pub fn to_jsonl(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"type\":\"flight_meta\",\"capacity\":{},\"retained\":{},\"dropped\":{},\"events\":{},\"pinned\":{}}}",
            self.capacity,
            self.ring.len(),
            self.dropped,
            self.events.len(),
            self.pinned.len(),
        );
        for event in &self.events {
            let _ = writeln!(out, "{}", event.jsonl_line());
        }
        for pin in &self.pinned {
            let _ = writeln!(
                out,
                "{{\"type\":\"exemplar\",\"event\":{},\"trace\":{}}}",
                pin.event,
                pin.trace.jsonl_line("trace"),
            );
        }
        for trace in &self.ring {
            let _ = writeln!(out, "{}", trace.jsonl_line("trace"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(latency_ms: f64, end_ms: f64) -> RequestTrace {
        RequestTrace {
            name: "serve.request.knn".into(),
            latency_ms,
            end_ms,
            queries: 8,
            tick_requests: 2,
            stage_device_ms: vec![
                ("Partition".into(), 0.2),
                ("Schedule".into(), 0.1),
                ("Launch".into(), latency_ms / 2.0),
                ("Gather".into(), 0.0),
            ],
            shard_skew: 1.25,
        }
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let mut rec = FlightRecorder::new(3);
        for i in 0..5 {
            rec.record(trace(1.0, i as f64));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.dropped(), 2);
        let ends: Vec<f64> = rec.recent().map(|t| t.end_ms).collect();
        assert_eq!(ends, vec![2.0, 3.0, 4.0]);
        assert!(rec.events().is_empty(), "no monitor, no events");
    }

    #[test]
    fn breach_pins_the_worst_trace_and_recovery_is_reported() {
        let slo = SloConfig {
            quantile: 0.99,
            target_ms: 5.0,
            window: 8,
            min_samples: 4,
        };
        let mut rec = FlightRecorder::with_slo(32, slo);
        for i in 0..6 {
            rec.record(trace(1.0, i as f64));
        }
        assert!(rec.events().is_empty());
        rec.record(trace(40.0, 6.0)); // tips the window p99
        assert_eq!(rec.events().len(), 1);
        let SloEvent::Breach {
            observed_ms,
            exemplar,
            window_len,
            ..
        } = &rec.events()[0]
        else {
            panic!("breach expected");
        };
        assert_eq!(*observed_ms, 40.0);
        assert_eq!(*window_len, 7);
        let pin = &rec.pinned()[exemplar.unwrap()];
        assert_eq!(pin.trace.latency_ms, 40.0);
        assert_eq!(pin.trace.dominant_stage().unwrap().0, "Launch");
        assert!(rec.monitor().unwrap().is_breached());
        // The slow sample ages out of the window: recovery.
        for i in 7..16 {
            rec.record(trace(1.0, i as f64));
        }
        assert_eq!(rec.events().len(), 2);
        assert!(matches!(rec.events()[1], SloEvent::Recover { .. }));
        assert!(!rec.monitor().unwrap().is_breached());
        assert_eq!(rec.pinned().len(), 1, "recovery pins nothing");
    }

    #[test]
    fn identical_streams_pin_identical_exemplars() {
        let run = || {
            let slo = SloConfig {
                quantile: 0.99,
                target_ms: 2.0,
                window: 8,
                min_samples: 4,
            };
            let mut rec = FlightRecorder::with_slo(16, slo);
            let latencies = [1.0, 1.5, 1.0, 8.0, 8.0, 1.0, 1.2, 9.0, 1.0, 1.1];
            for (i, l) in latencies.iter().enumerate() {
                rec.record(trace(*l, i as f64));
            }
            rec
        };
        let a = run();
        let b = run();
        assert_eq!(a.events(), b.events());
        assert_eq!(a.pinned(), b.pinned());
        assert_eq!(a.to_jsonl(), b.to_jsonl());
        assert!(!a.pinned().is_empty());
        // Equal-latency worst traces pin the *earliest* one.
        assert_eq!(a.pinned()[0].trace.end_ms, 3.0);
    }

    #[test]
    fn min_samples_gates_judgement() {
        let slo = SloConfig {
            quantile: 0.5,
            target_ms: 0.5,
            window: 8,
            min_samples: 5,
        };
        let mut rec = FlightRecorder::with_slo(8, slo);
        for i in 0..4 {
            rec.record(trace(100.0, i as f64));
        }
        assert!(rec.events().is_empty(), "window not yet judged");
        rec.record(trace(100.0, 4.0));
        assert_eq!(rec.events().len(), 1);
    }

    #[test]
    fn pinning_is_capped() {
        // Nearest-rank p90 of a 2-sample window is its max, so one over
        // tips it and two unders flush it.
        let slo = SloConfig {
            quantile: 0.9,
            target_ms: 1.0,
            window: 2,
            min_samples: 1,
        };
        let mut rec = FlightRecorder::with_slo(4, slo);
        // One over then two unders per cycle: the over tips the 2-sample
        // window's median, the two unders flush it back — every cycle is a
        // fresh breach + recovery.
        for i in 0..(MAX_PINNED as u32 + 10) {
            rec.record(trace(5.0, (3 * i) as f64));
            rec.record(trace(0.1, (3 * i + 1) as f64));
            rec.record(trace(0.1, (3 * i + 2) as f64));
        }
        assert_eq!(rec.pinned().len(), MAX_PINNED);
        let unpinned_breaches = rec
            .events()
            .iter()
            .filter(|e| matches!(e, SloEvent::Breach { exemplar: None, .. }))
            .count();
        assert!(unpinned_breaches >= 10, "later breaches stop pinning");
    }

    #[test]
    fn jsonl_parses_back() {
        let slo = SloConfig {
            quantile: 0.99,
            target_ms: 1.0,
            window: 8,
            min_samples: 4,
        };
        let mut rec = FlightRecorder::with_slo(8, slo);
        for i in 0..6 {
            rec.record(trace(3.0, i as f64));
        }
        let jsonl = rec.to_jsonl();
        let parsed = crate::parse_jsonl(&jsonl).unwrap();
        assert_eq!(parsed[0].get("type").unwrap().as_str(), Some("flight_meta"));
        assert!(parsed
            .iter()
            .any(|r| r.get("type").and_then(|t| t.as_str()) == Some("slo_breach")));
        assert!(parsed
            .iter()
            .any(|r| r.get("type").and_then(|t| t.as_str()) == Some("exemplar")));
    }
}
