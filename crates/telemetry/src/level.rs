//! The `RTNN_TELEMETRY` knob: how much the telemetry layer records.
//!
//! Mirrors the `RTNN_SCALE` / `RTNN_SERVE_*` pattern: an unset or empty
//! variable falls back to the default ([`TelemetryLevel::Off`]), a
//! set-but-invalid variable is a configuration error reported with a clear
//! message instead of silently recording at the wrong level. The parsing
//! core ([`TelemetryLevel::from_vars`]) takes an injectable variable source
//! so it is unit-testable without touching the process environment.

/// How much the telemetry layer records.
///
/// The levels are strictly ordered: everything `Basic` records, `Full`
/// records too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TelemetryLevel {
    /// Record nothing. Every producer hook reduces to one relaxed atomic
    /// load — the overhead `fig_obs` gates.
    #[default]
    Off,
    /// Metrics only: counters, gauges and latency histograms.
    Basic,
    /// Metrics plus spans and the ring-buffer event log.
    Full,
}

impl TelemetryLevel {
    /// The canonical spelling of each level (what `RTNN_TELEMETRY` accepts
    /// and what provenance records emit).
    pub fn as_str(&self) -> &'static str {
        match self {
            TelemetryLevel::Off => "off",
            TelemetryLevel::Basic => "basic",
            TelemetryLevel::Full => "full",
        }
    }

    /// True when counters/gauges/histograms are recorded.
    pub fn metrics_enabled(&self) -> bool {
        *self >= TelemetryLevel::Basic
    }

    /// True when spans and events are recorded.
    pub fn spans_enabled(&self) -> bool {
        *self >= TelemetryLevel::Full
    }

    /// Read the level from the `RTNN_TELEMETRY` environment variable. A
    /// variable that is set but not one of `off`/`basic`/`full` is a
    /// configuration error: the process exits with a clear message instead
    /// of silently recording at the wrong level.
    pub fn from_env() -> Self {
        match Self::from_vars(|name| std::env::var(name).ok()) {
            Ok(level) => level,
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        }
    }

    /// [`Self::from_env`] with an injectable variable source (testable).
    /// Unset or empty falls back to [`TelemetryLevel::Off`]; values are
    /// trimmed and matched case-insensitively; anything else is rejected
    /// with a message naming the variable and the accepted values.
    pub fn from_vars(get: impl Fn(&str) -> Option<String>) -> Result<Self, String> {
        let Some(raw) = get("RTNN_TELEMETRY") else {
            return Ok(TelemetryLevel::Off);
        };
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            return Ok(TelemetryLevel::Off);
        }
        match trimmed.to_ascii_lowercase().as_str() {
            "off" => Ok(TelemetryLevel::Off),
            "basic" => Ok(TelemetryLevel::Basic),
            "full" => Ok(TelemetryLevel::Full),
            _ => Err(format!(
                "RTNN_TELEMETRY={raw:?} is not a telemetry level: expected one of \
                 \"off\", \"basic\" or \"full\" (unset it to use the default, off)"
            )),
        }
    }
}

impl std::fmt::Display for TelemetryLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_or_empty_defaults_to_off() {
        assert_eq!(
            TelemetryLevel::from_vars(|_| None).unwrap(),
            TelemetryLevel::Off
        );
        assert_eq!(
            TelemetryLevel::from_vars(|_| Some("   ".into())).unwrap(),
            TelemetryLevel::Off
        );
    }

    #[test]
    fn valid_levels_parse_case_insensitively() {
        for (raw, want) in [
            ("off", TelemetryLevel::Off),
            ("basic", TelemetryLevel::Basic),
            ("full", TelemetryLevel::Full),
            ("FULL", TelemetryLevel::Full),
            ("  Basic ", TelemetryLevel::Basic),
        ] {
            assert_eq!(
                TelemetryLevel::from_vars(|_| Some(raw.to_string())).unwrap(),
                want,
                "raw {raw:?}"
            );
        }
    }

    #[test]
    fn garbage_is_rejected_with_a_clear_error() {
        for bad in ["on", "1", "verbose", "tru e", "yes"] {
            let err = TelemetryLevel::from_vars(|_| Some(bad.to_string())).unwrap_err();
            assert!(err.contains("RTNN_TELEMETRY"), "{err}");
            assert!(err.contains("default"), "{err}");
        }
    }

    #[test]
    fn levels_are_ordered_and_gate_correctly() {
        assert!(TelemetryLevel::Off < TelemetryLevel::Basic);
        assert!(TelemetryLevel::Basic < TelemetryLevel::Full);
        assert!(!TelemetryLevel::Off.metrics_enabled());
        assert!(!TelemetryLevel::Basic.spans_enabled());
        assert!(TelemetryLevel::Basic.metrics_enabled());
        assert!(TelemetryLevel::Full.spans_enabled() && TelemetryLevel::Full.metrics_enabled());
        assert_eq!(TelemetryLevel::Full.as_str(), "full");
        assert_eq!(TelemetryLevel::default(), TelemetryLevel::Off);
    }
}
