//! `rtnn-telemetry`: the unified metrics + tracing substrate behind every
//! RTNN layer.
//!
//! One [`Telemetry`] sink owns a lock-light [`MetricsRegistry`] (counters,
//! gauges, log-bucketed histograms with exact p50/p99/p999), a bounded
//! ring buffer of completed [`FinishedSpan`]s, a bounded event log, and an
//! injectable [`Clock`]. Producers — the execution pipeline, accel
//! builders, the sharded index, the query service — record through it
//! instead of growing private timing surfaces; consumers freeze it into a
//! [`TelemetrySnapshot`] and export JSONL or Prometheus text.
//!
//! Recording is gated by [`TelemetryLevel`] (the validated `RTNN_TELEMETRY`
//! env knob): `off` reduces every hook to a level check, `basic` records
//! metrics, `full` adds spans and events. Two invariants the rest of the
//! workspace leans on:
//!
//! * **Results are never affected.** The sink only observes; `fig_obs` and
//!   `tests/telemetry_equivalence.rs` pin bit-equal `SearchResults` across
//!   all levels.
//! * **Virtual-time snapshots are bit-deterministic.** A sink on a
//!   [`VirtualClock`] stamps spans from the replayed schedule and drops
//!   wall-measured attributes ([`SpanGuard::attr_wall`]), so the serve
//!   load harness reproduces identical snapshots on any machine.
//!
//! # Ambient context
//!
//! Spans parent implicitly: a [`SpanGuard`] pushes its id onto a
//! thread-local stack, and the next span created on the same sink in that
//! thread nests under it. [`Telemetry::current`] resolves the active sink
//! for code that is not handed one explicitly — the nearest
//! [`Telemetry::scoped`] frame, falling back to the process-wide
//! [`Telemetry::global`] (initialized from `RTNN_TELEMETRY`). Worker-pool
//! threads have their own empty stacks and therefore do *not* inherit the
//! spawner's ambient sink; parallel layers (e.g. the sharded index)
//! instead synthesize per-worker spans retrospectively on the caller
//! thread via [`Telemetry::record_span`], which keeps span order
//! deterministic. [`Telemetry::suppressed`] blocks the global fallback for
//! closures whose telemetry the caller re-emits itself.

#![deny(missing_docs)]

pub mod clock;
pub mod export;
pub mod flight;
pub mod level;
pub mod metrics;
pub mod profile;
pub mod span;

pub use clock::{Clock, MonotonicClock, VirtualClock};
pub use export::{
    parse_json, parse_jsonl, to_jsonl, to_prometheus, verify_jsonl_roundtrip, JsonValue,
};
pub use flight::{FlightRecorder, PinnedExemplar, RequestTrace, SloConfig, SloEvent, SloMonitor};
pub use level::TelemetryLevel;
pub use metrics::{
    percentile, Counter, Gauge, Histogram, HistogramHandle, HistogramSnapshot, MetricsRegistry,
    MetricsSnapshot,
};
pub use profile::{
    density_bucket, ProfileSample, ProfileSnapshot, Signature, SignatureProfile, SignatureProfiler,
    StageProfile,
};
pub use span::{Event, FinishedSpan, RingBuffer, SpanId};

use std::borrow::Cow;
use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Default capacity of the completed-span ring buffer.
pub const DEFAULT_SPAN_CAPACITY: usize = 8192;
/// Default capacity of the event log.
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

/// A telemetry sink: level gate, clock, metrics registry, span ring and
/// event log. Shared as an `Arc` between producers and the snapshotting
/// consumer.
pub struct Telemetry {
    level: TelemetryLevel,
    clock: Arc<dyn Clock>,
    metrics: MetricsRegistry,
    spans: Mutex<RingBuffer<FinishedSpan>>,
    events: Mutex<RingBuffer<Event>>,
    next_span_id: AtomicU64,
    profiler: Mutex<Option<SignatureProfiler>>,
    profiler_on: AtomicBool,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("level", &self.level)
            .field("deterministic", &self.is_deterministic())
            .finish_non_exhaustive()
    }
}

/// A retrospectively recorded span: explicit interval and parent, for
/// emission sites where the tree is assembled after the fact (e.g. per-shard
/// stages synthesized on the caller thread once the workers are done).
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span name (workspace dotted schema).
    pub name: Cow<'static, str>,
    /// Enclosing span, if any.
    pub parent: Option<SpanId>,
    /// Interval start, in the sink clock's milliseconds.
    pub start_ms: f64,
    /// Interval end, in the sink clock's milliseconds.
    pub end_ms: f64,
    /// Numeric attributes.
    pub attrs: Vec<(Cow<'static, str>, f64)>,
}

enum Frame {
    /// A `scoped` region: this sink answers `current()` here.
    Scope(Arc<Telemetry>),
    /// A `suppressed` region: `current()` resolves to nothing.
    Suppressed,
    /// A live `SpanGuard`: ambient parent for same-sink child spans.
    Span(Arc<Telemetry>, SpanId),
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

fn global_sink() -> &'static Arc<Telemetry> {
    static GLOBAL: OnceLock<Arc<Telemetry>> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let sink = Telemetry::new(TelemetryLevel::from_env());
        if let Some(profiler) = SignatureProfiler::from_env() {
            sink.enable_profiler(profiler);
        }
        sink
    })
}

/// Pops its frame on drop, so `scoped`/`suppressed` unwind correctly even
/// when the closure panics.
struct FrameGuard;

impl Drop for FrameGuard {
    fn drop(&mut self) {
        STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

impl Telemetry {
    /// A sink at `level` on a fresh [`MonotonicClock`], with default ring
    /// capacities.
    pub fn new(level: TelemetryLevel) -> Arc<Self> {
        Self::with_clock(level, Arc::new(MonotonicClock::new()))
    }

    /// A sink at `level` on the given clock. Hand a shared
    /// [`VirtualClock`] here to make every recorded timestamp a
    /// deterministic function of the replayed schedule.
    pub fn with_clock(level: TelemetryLevel, clock: Arc<dyn Clock>) -> Arc<Self> {
        Self::with_capacities(level, clock, DEFAULT_SPAN_CAPACITY, DEFAULT_EVENT_CAPACITY)
    }

    /// A sink with explicit ring-buffer capacities.
    pub fn with_capacities(
        level: TelemetryLevel,
        clock: Arc<dyn Clock>,
        span_capacity: usize,
        event_capacity: usize,
    ) -> Arc<Self> {
        Arc::new(Telemetry {
            level,
            clock,
            metrics: MetricsRegistry::new(),
            spans: Mutex::new(RingBuffer::new(span_capacity)),
            events: Mutex::new(RingBuffer::new(event_capacity)),
            next_span_id: AtomicU64::new(1),
            profiler: Mutex::new(None),
            profiler_on: AtomicBool::new(false),
        })
    }

    /// The process-wide sink, initialized on first use from the
    /// `RTNN_TELEMETRY` environment variable (and exiting with a clear
    /// message if that variable is set to garbage).
    pub fn global() -> &'static Arc<Telemetry> {
        global_sink()
    }

    /// The sink ambient code should record to, or `None` when recording is
    /// off here: inside a [`Telemetry::suppressed`] region, or when the
    /// resolved sink's level is [`TelemetryLevel::Off`]. Resolution order:
    /// nearest thread-local [`Telemetry::scoped`] / span frame, then the
    /// process-wide [`Telemetry::global`].
    pub fn current() -> Option<Arc<Telemetry>> {
        let ambient = STACK.with(|stack| {
            stack.borrow().last().map(|frame| match frame {
                Frame::Scope(sink) | Frame::Span(sink, _) => Some(sink.clone()),
                Frame::Suppressed => None,
            })
        });
        let sink = match ambient {
            Some(Some(sink)) => sink,
            Some(None) => return None,
            None => global_sink().clone(),
        };
        (sink.level != TelemetryLevel::Off).then_some(sink)
    }

    /// Run `f` with `sink` as the thread's ambient sink (what
    /// [`Telemetry::current`] resolves to).
    pub fn scoped<R>(sink: &Arc<Telemetry>, f: impl FnOnce() -> R) -> R {
        STACK.with(|stack| stack.borrow_mut().push(Frame::Scope(sink.clone())));
        let _guard = FrameGuard;
        f()
    }

    /// Run `f` with ambient telemetry disabled: [`Telemetry::current`]
    /// resolves to `None` inside, including the global fallback. Used
    /// around worker closures whose telemetry the caller synthesizes
    /// itself, so nothing is double-counted.
    pub fn suppressed<R>(f: impl FnOnce() -> R) -> R {
        STACK.with(|stack| stack.borrow_mut().push(Frame::Suppressed));
        let _guard = FrameGuard;
        f()
    }

    /// The sink's recording level.
    pub fn level(&self) -> TelemetryLevel {
        self.level
    }

    /// True when counters/gauges/histograms are recorded.
    pub fn metrics_enabled(&self) -> bool {
        self.level.metrics_enabled()
    }

    /// True when spans and events are recorded.
    pub fn spans_enabled(&self) -> bool {
        self.level.spans_enabled()
    }

    /// True when the sink's clock is hand-advanced ([`Clock::is_virtual`]):
    /// wall-measured attributes are dropped so snapshots stay
    /// bit-reproducible.
    pub fn is_deterministic(&self) -> bool {
        self.clock.is_virtual()
    }

    /// Current time on the sink's clock, in milliseconds.
    pub fn now_ms(&self) -> f64 {
        self.clock.now_ms()
    }

    // ---- metrics ----------------------------------------------------------

    /// The counter handle for `name` (cacheable; recording through it never
    /// takes the registry lock). The handle is live even at level `off` —
    /// gate hot paths on [`Telemetry::metrics_enabled`].
    pub fn counter(&self, name: &str) -> Counter {
        self.metrics.counter(name)
    }

    /// The gauge handle for `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.metrics.gauge(name)
    }

    /// The histogram handle for `name`.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        self.metrics.histogram(name)
    }

    /// Add `n` to the counter `name`, if metrics are enabled.
    pub fn counter_add(&self, name: &str, n: u64) {
        if self.metrics_enabled() {
            self.metrics.counter(name).add(n);
        }
    }

    /// Set the gauge `name`, if metrics are enabled.
    pub fn gauge_set(&self, name: &str, v: f64) {
        if self.metrics_enabled() {
            self.metrics.gauge(name).set(v);
        }
    }

    /// Record one observation into the histogram `name`, if metrics are
    /// enabled.
    pub fn observe(&self, name: &str, v: f64) {
        if self.metrics_enabled() {
            self.metrics.histogram(name).record(v);
        }
    }

    /// Record a *wall-measured* observation (host milliseconds, anything
    /// machine-dependent). Dropped on deterministic (virtual-clock) sinks,
    /// the histogram counterpart of [`SpanGuard::attr_wall`].
    pub fn observe_wall(&self, name: &str, v: f64) {
        if self.metrics_enabled() && !self.is_deterministic() {
            self.metrics.histogram(name).record(v);
        }
    }

    // ---- continuous profiling ---------------------------------------------

    /// Attach a [`SignatureProfiler`]: from now on,
    /// [`profile`](Self::profile) folds samples into it (when the sink's
    /// level records metrics at all). The global sink attaches one
    /// automatically when the validated `RTNN_PROFILE` knob is on.
    pub fn enable_profiler(&self, profiler: SignatureProfiler) {
        *self.profiler.lock().expect("profiler lock") = Some(profiler);
        self.profiler_on.store(true, Ordering::Release);
    }

    /// True when a profiler is attached and the level records metrics —
    /// the cheap gate hot paths check (one relaxed atomic load when off).
    pub fn profiler_enabled(&self) -> bool {
        self.metrics_enabled() && self.profiler_on.load(Ordering::Acquire)
    }

    /// Fold one execution into the attached profiler; no-op when none is
    /// attached or the level is `off`.
    pub fn profile(&self, sample: &ProfileSample<'_>) {
        if !self.profiler_enabled() {
            return;
        }
        if let Some(profiler) = self.profiler.lock().expect("profiler lock").as_mut() {
            profiler.record(sample);
        }
    }

    /// Freeze the attached profiler's rolling statistics, or `None` when
    /// no profiler is attached.
    pub fn profile_snapshot(&self) -> Option<ProfileSnapshot> {
        self.profiler
            .lock()
            .expect("profiler lock")
            .as_ref()
            .map(SignatureProfiler::snapshot)
    }

    // ---- spans ------------------------------------------------------------

    /// Start a span named `name`, parented under the thread's innermost
    /// live span on this sink (ambient nesting). Returns a no-op guard
    /// when spans are disabled.
    pub fn span(self: &Arc<Self>, name: impl Into<Cow<'static, str>>) -> SpanGuard {
        let parent = self.ambient_parent();
        self.span_with_parent(name, parent)
    }

    /// Start a span with an explicit parent (or an explicit root when
    /// `parent` is `None`), bypassing ambient lookup.
    pub fn span_with_parent(
        self: &Arc<Self>,
        name: impl Into<Cow<'static, str>>,
        parent: Option<SpanId>,
    ) -> SpanGuard {
        if !self.spans_enabled() {
            return SpanGuard {
                inner: None,
                _not_send: PhantomData,
            };
        }
        let id = self.reserve_span_id();
        STACK.with(|stack| {
            stack.borrow_mut().push(Frame::Span(self.clone(), id));
        });
        SpanGuard {
            inner: Some(SpanInner {
                sink: self.clone(),
                id,
                parent,
                name: name.into(),
                start_ms: self.clock.now_ms(),
                attrs: Vec::new(),
            }),
            _not_send: PhantomData,
        }
    }

    /// The thread's innermost live span id *on this sink*, if any.
    pub fn ambient_parent(self: &Arc<Self>) -> Option<SpanId> {
        STACK.with(|stack| {
            stack.borrow().iter().rev().find_map(|frame| match frame {
                Frame::Span(sink, id) if Arc::ptr_eq(sink, self) => Some(*id),
                _ => None,
            })
        })
    }

    /// Allocate a span id without recording anything — for
    /// reserve-then-fill emission where children must reference a parent
    /// that is recorded later.
    pub fn reserve_span_id(&self) -> SpanId {
        SpanId(self.next_span_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Record a completed span retrospectively with a fresh id. Returns
    /// the id, or `None` when spans are disabled.
    pub fn record_span(&self, record: SpanRecord) -> Option<SpanId> {
        if !self.spans_enabled() {
            return None;
        }
        let id = self.reserve_span_id();
        self.record_span_with_id(id, record);
        Some(id)
    }

    /// Record a completed span under a previously
    /// [reserved](Self::reserve_span_id) id. No-op when spans are disabled.
    pub fn record_span_with_id(&self, id: SpanId, record: SpanRecord) {
        if !self.spans_enabled() {
            return;
        }
        self.push_span(FinishedSpan {
            id,
            parent: record.parent,
            name: record.name,
            start_ms: record.start_ms,
            end_ms: record.end_ms,
            attrs: record.attrs,
        });
    }

    fn push_span(&self, span: FinishedSpan) {
        self.spans.lock().expect("span ring lock").push(span);
    }

    /// Append a point-in-time event to the bounded log (recorded at level
    /// `full`, like spans).
    pub fn event(&self, name: impl Into<Cow<'static, str>>, attrs: &[(&'static str, f64)]) {
        if !self.spans_enabled() {
            return;
        }
        let event = Event {
            at_ms: self.clock.now_ms(),
            name: name.into(),
            attrs: attrs.iter().map(|(k, v)| (Cow::Borrowed(*k), *v)).collect(),
        };
        self.events.lock().expect("event ring lock").push(event);
    }

    // ---- snapshot ---------------------------------------------------------

    /// Freeze everything recorded so far.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let spans = self.spans.lock().expect("span ring lock");
        let events = self.events.lock().expect("event ring lock");
        TelemetrySnapshot {
            level: self.level,
            deterministic: self.is_deterministic(),
            metrics: self.metrics.snapshot(),
            spans: spans.to_vec(),
            dropped_spans: spans.dropped(),
            events: events.to_vec(),
            dropped_events: events.dropped(),
        }
    }
}

struct SpanInner {
    sink: Arc<Telemetry>,
    id: SpanId,
    parent: Option<SpanId>,
    name: Cow<'static, str>,
    start_ms: f64,
    attrs: Vec<(Cow<'static, str>, f64)>,
}

/// A live span. Completing it (dropping the guard) stamps the end time and
/// pushes the [`FinishedSpan`] into the sink's ring buffer. Not `Send`:
/// a span belongs to the thread that opened it (the ambient stack is
/// thread-local); cross-thread structure goes through
/// [`Telemetry::record_span`] instead.
pub struct SpanGuard {
    inner: Option<SpanInner>,
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard {
    /// This span's id, or `None` for a disabled no-op guard.
    pub fn id(&self) -> Option<SpanId> {
        self.inner.as_ref().map(|inner| inner.id)
    }

    /// Attach a numeric attribute. Safe for deterministic values (device
    /// milliseconds, counts, sizes).
    pub fn attr(&mut self, key: impl Into<Cow<'static, str>>, value: f64) -> &mut Self {
        if let Some(inner) = self.inner.as_mut() {
            inner.attrs.push((key.into(), value));
        }
        self
    }

    /// Attach a *wall-measured* attribute (host milliseconds, anything
    /// machine-dependent). Dropped on deterministic (virtual-clock) sinks
    /// so replay snapshots stay bit-reproducible.
    pub fn attr_wall(&mut self, key: impl Into<Cow<'static, str>>, value: f64) -> &mut Self {
        if let Some(inner) = self.inner.as_mut() {
            if !inner.sink.is_deterministic() {
                inner.attrs.push((key.into(), value));
            }
        }
        self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack
                .iter()
                .rposition(|f| matches!(f, Frame::Span(_, id) if *id == inner.id))
            {
                stack.remove(pos);
            }
        });
        let end_ms = inner.sink.clock.now_ms();
        inner.sink.push_span(FinishedSpan {
            id: inner.id,
            parent: inner.parent,
            name: inner.name,
            start_ms: inner.start_ms,
            end_ms,
            attrs: inner.attrs,
        });
    }
}

/// Frozen view of a [`Telemetry`] sink: level, determinism flag, metric
/// values, completed spans (oldest first) and events.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// The sink's recording level.
    pub level: TelemetryLevel,
    /// True when the sink ran on a virtual clock (see
    /// [`Telemetry::is_deterministic`]).
    pub deterministic: bool,
    /// All counters, gauges and histograms, name-sorted per kind.
    pub metrics: MetricsSnapshot,
    /// Completed spans, in completion order (oldest first).
    pub spans: Vec<FinishedSpan>,
    /// Spans evicted by ring-buffer overflow.
    pub dropped_spans: u64,
    /// Logged events, oldest first.
    pub events: Vec<Event>,
    /// Events evicted by ring-buffer overflow.
    pub dropped_events: u64,
}

impl TelemetrySnapshot {
    /// The span with this id, if retained.
    pub fn span(&self, id: SpanId) -> Option<&FinishedSpan> {
        self.spans.iter().find(|s| s.id == id)
    }

    /// All spans with this exact name, in completion order.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a FinishedSpan> {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// Direct children of `id`, in completion order.
    pub fn children_of(&self, id: SpanId) -> Vec<&FinishedSpan> {
        self.spans.iter().filter(|s| s.parent == Some(id)).collect()
    }

    /// Spans with no retained parent (roots, plus orphans whose parent was
    /// evicted from the ring).
    pub fn roots(&self) -> Vec<&FinishedSpan> {
        self.spans
            .iter()
            .filter(|s| match s.parent {
                None => true,
                Some(p) => self.span(p).is_none(),
            })
            .collect()
    }

    /// Every span in the subtree rooted at `id` (including the root), in
    /// completion order.
    pub fn subtree(&self, id: SpanId) -> Vec<&FinishedSpan> {
        let mut member: Vec<SpanId> = vec![id];
        // Spans are stored in completion order, so children may precede
        // parents; iterate to a fixed point over this bounded set instead.
        loop {
            let before = member.len();
            for s in &self.spans {
                if let Some(p) = s.parent {
                    if member.contains(&p) && !member.contains(&s.id) {
                        member.push(s.id);
                    }
                }
            }
            if member.len() == before {
                break;
            }
        }
        self.spans
            .iter()
            .filter(|s| member.contains(&s.id))
            .collect()
    }

    /// Check span-tree well-formedness: every retained child's interval
    /// nests inside its retained parent's (within `tol_ms`), and no span
    /// is its own ancestor. Orphans (parent evicted) are skipped.
    pub fn check_nesting(&self, tol_ms: f64) -> Result<(), String> {
        for child in &self.spans {
            let Some(parent) = child.parent.and_then(|p| self.span(p)) else {
                continue;
            };
            if child.id == parent.id {
                return Err(format!("span {} is its own parent", child.id));
            }
            if child.start_ms < parent.start_ms - tol_ms || child.end_ms > parent.end_ms + tol_ms {
                return Err(format!(
                    "span {} [{}, {}] ({}) escapes parent {} [{}, {}] ({})",
                    child.id,
                    child.start_ms,
                    child.end_ms,
                    child.name,
                    parent.id,
                    parent.start_ms,
                    parent.end_ms,
                    parent.name,
                ));
            }
        }
        // Cycle check: walk each parent chain with a step bound.
        for s in &self.spans {
            let mut cursor = s.parent;
            let mut steps = 0usize;
            while let Some(p) = cursor {
                if p == s.id {
                    return Err(format!("span {} is in a parent cycle", s.id));
                }
                steps += 1;
                if steps > self.spans.len() {
                    return Err(format!("parent chain of span {} does not terminate", s.id));
                }
                cursor = self.span(p).and_then(|ps| ps.parent);
            }
        }
        Ok(())
    }

    /// Serialize as JSON Lines (see [`export::to_jsonl`]).
    pub fn to_jsonl(&self) -> String {
        export::to_jsonl(self)
    }

    /// Serialize the metrics as Prometheus text (see
    /// [`export::to_prometheus`]).
    pub fn to_prometheus(&self) -> String {
        export::to_prometheus(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_level_records_nothing() {
        let t = Telemetry::new(TelemetryLevel::Off);
        t.counter_add("a", 1);
        t.gauge_set("b", 2.0);
        t.observe("c", 3.0);
        t.event("e", &[]);
        {
            let mut s = t.span("root");
            assert_eq!(s.id(), None);
            s.attr("k", 1.0);
        }
        let snap = t.snapshot();
        assert!(snap.metrics.counters.is_empty());
        assert!(snap.metrics.gauges.is_empty());
        assert!(snap.metrics.histograms.is_empty());
        assert!(snap.spans.is_empty());
        assert!(snap.events.is_empty());
    }

    #[test]
    fn basic_records_metrics_but_not_spans() {
        let t = Telemetry::new(TelemetryLevel::Basic);
        t.counter_add("queries", 2);
        t.observe("lat", 5.0);
        t.event("e", &[]);
        let _s = t.span("root");
        drop(_s);
        let snap = t.snapshot();
        assert_eq!(snap.metrics.counter("queries"), Some(2));
        assert_eq!(snap.metrics.histogram("lat").unwrap().count, 1);
        assert!(snap.spans.is_empty());
        assert!(snap.events.is_empty());
    }

    #[test]
    fn spans_nest_ambiently_within_one_sink() {
        let t = Telemetry::new(TelemetryLevel::Full);
        {
            let root = t.span("query");
            let root_id = root.id().unwrap();
            {
                let stage = t.span("stage.launch");
                assert_ne!(stage.id(), Some(root_id));
                {
                    let inner = t.span("stage.launch.chunk");
                    drop(inner);
                }
            }
            let sibling = t.span("stage.gather");
            drop(sibling);
            drop(root);
        }
        let snap = t.snapshot();
        assert_eq!(snap.spans.len(), 4);
        let root = snap.spans_named("query").next().unwrap();
        assert_eq!(root.parent, None);
        let launch = snap.spans_named("stage.launch").next().unwrap();
        let gather = snap.spans_named("stage.gather").next().unwrap();
        let chunk = snap.spans_named("stage.launch.chunk").next().unwrap();
        assert_eq!(launch.parent, Some(root.id));
        assert_eq!(gather.parent, Some(root.id));
        assert_eq!(chunk.parent, Some(launch.id));
        snap.check_nesting(1e-6).unwrap();
        assert_eq!(snap.roots().len(), 1);
        assert_eq!(snap.subtree(root.id).len(), 4);
    }

    #[test]
    fn distinct_sinks_do_not_cross_parent() {
        let a = Telemetry::new(TelemetryLevel::Full);
        let b = Telemetry::new(TelemetryLevel::Full);
        let root_a = a.span("a.root");
        let span_b = b.span("b.root");
        assert_eq!(
            b.snapshot().spans.len(),
            0,
            "b.root still live, nothing recorded yet"
        );
        drop(span_b);
        drop(root_a);
        let snap_b = b.snapshot();
        assert_eq!(snap_b.spans[0].parent, None, "no cross-sink parenting");
    }

    #[test]
    fn scoped_and_suppressed_drive_current() {
        // The global sink defaults to Off in tests (RTNN_TELEMETRY unset),
        // so bare current() is None.
        let t = Telemetry::new(TelemetryLevel::Full);
        Telemetry::scoped(&t, || {
            let current = Telemetry::current().expect("scoped sink is current");
            assert!(Arc::ptr_eq(&current, &t));
            Telemetry::suppressed(|| {
                assert!(Telemetry::current().is_none());
            });
            assert!(Telemetry::current().is_some());
        });
        let off = Telemetry::new(TelemetryLevel::Off);
        Telemetry::scoped(&off, || {
            assert!(
                Telemetry::current().is_none(),
                "an Off sink never answers current()"
            );
        });
    }

    #[test]
    fn retro_records_build_connected_trees() {
        let clock = Arc::new(VirtualClock::new());
        let t = Telemetry::with_clock(TelemetryLevel::Full, clock.clone());
        let request = t.reserve_span_id();
        let tick = t
            .record_span(SpanRecord {
                name: "serve.tick".into(),
                parent: Some(request),
                start_ms: 1.0,
                end_ms: 4.0,
                attrs: vec![("requests".into(), 2.0)],
            })
            .unwrap();
        t.record_span(SpanRecord {
            name: "serve.shard".into(),
            parent: Some(tick),
            start_ms: 1.0,
            end_ms: 3.0,
            attrs: vec![],
        })
        .unwrap();
        clock.set_ms(5.0);
        t.record_span_with_id(
            request,
            SpanRecord {
                name: "serve.request".into(),
                parent: None,
                start_ms: 0.0,
                end_ms: 5.0,
                attrs: vec![],
            },
        );
        let snap = t.snapshot();
        snap.check_nesting(0.0).unwrap();
        let root = snap.spans_named("serve.request").next().unwrap();
        assert_eq!(root.id, request);
        assert_eq!(snap.subtree(request).len(), 3);
        assert_eq!(snap.children_of(tick).len(), 1);
    }

    #[test]
    fn virtual_clock_snapshots_are_bit_deterministic() {
        let run = || {
            let clock = Arc::new(VirtualClock::new());
            let t = Telemetry::with_clock(TelemetryLevel::Full, clock.clone());
            t.counter_add("ticks", 3);
            t.observe("lat", 2.5);
            clock.set_ms(1.0);
            {
                let mut s = t.span("tick");
                s.attr("n", 1.0);
                s.attr_wall("host_ms", std::time::Instant::now().elapsed().as_secs_f64());
                clock.set_ms(2.0);
            }
            t.event("departure", &[("req", 1.0)]);
            t.snapshot()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same schedule, same snapshot");
        assert!(a.deterministic);
        assert!(
            a.spans[0].attr("host_ms").is_none(),
            "wall attrs are dropped on virtual clocks"
        );
        assert_eq!(a.spans[0].attr("n"), Some(1.0));
        assert_eq!(a.to_jsonl(), b.to_jsonl());
    }

    #[test]
    fn ring_overflow_keeps_recent_spans_and_counts_drops() {
        let t =
            Telemetry::with_capacities(TelemetryLevel::Full, Arc::new(MonotonicClock::new()), 4, 2);
        for i in 0..6 {
            let mut s = t.span("s");
            s.attr("i", i as f64);
            drop(s);
            t.event("e", &[("i", i as f64)]);
        }
        let snap = t.snapshot();
        assert_eq!(snap.spans.len(), 4);
        assert_eq!(snap.dropped_spans, 2);
        assert_eq!(snap.spans[0].attr("i"), Some(2.0));
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.dropped_events, 4);
    }

    #[test]
    fn snapshot_exports_parse_back() {
        let t = Telemetry::new(TelemetryLevel::Full);
        t.counter_add("index.queries", 4);
        t.gauge_set("serve.queue_depth", 2.0);
        for v in [1.0, 2.0, 100.0] {
            t.observe("serve.latency.ms", v);
        }
        {
            let mut s = t.span("serve.request");
            s.attr("points", 64.0);
        }
        t.event("serve.enqueue", &[("depth", 1.0)]);
        let snap = t.snapshot();
        verify_jsonl_roundtrip(&snap).unwrap();
        let prom = snap.to_prometheus();
        assert!(prom.contains("# TYPE rtnn_index_queries counter"));
        assert!(prom.contains("rtnn_serve_queue_depth 2"));
        assert!(prom.contains("rtnn_serve_latency_ms_count 3"));
        assert!(prom.contains("rtnn_serve_latency_ms_bucket{le=\"+Inf\"} 3"));
        assert!(prom.contains("quantile=\"0.999\""));
    }

    #[test]
    fn profiler_rides_the_level_gate() {
        let sample = ProfileSample {
            plan_kind: "knn",
            points: 4096,
            backend: "gpusim",
            queries: 8,
            stages: &[("Launch", 2.0)],
        };
        // No profiler attached: recording is a no-op.
        let t = Telemetry::new(TelemetryLevel::Full);
        assert!(!t.profiler_enabled());
        t.profile(&sample);
        assert_eq!(t.profile_snapshot(), None);
        // Attached on an Off sink: still gated off.
        let off = Telemetry::new(TelemetryLevel::Off);
        off.enable_profiler(SignatureProfiler::default());
        assert!(!off.profiler_enabled());
        off.profile(&sample);
        assert!(off.profile_snapshot().unwrap().is_empty());
        // Attached on a recording sink: samples fold in.
        t.enable_profiler(SignatureProfiler::default());
        assert!(t.profiler_enabled());
        t.profile(&sample);
        t.profile(&sample);
        let snap = t.profile_snapshot().unwrap();
        assert_eq!(snap.lookup("knn", 4096, "gpusim").unwrap().executions, 2);
    }

    #[test]
    fn span_guard_is_resilient_to_out_of_order_drops() {
        let t = Telemetry::new(TelemetryLevel::Full);
        let a = t.span("a");
        let b = t.span("b");
        drop(a);
        let c = t.span("c");
        drop(c);
        drop(b);
        let snap = t.snapshot();
        // c was opened while b was still the innermost live span.
        let b_span = snap.spans_named("b").next().unwrap();
        let c_span = snap.spans_named("c").next().unwrap();
        assert_eq!(c_span.parent, Some(b_span.id));
    }
}
