//! The lock-light metrics registry: counters, gauges and log-bucketed
//! histograms with exact percentile snapshots.
//!
//! Counters and gauges are plain atomics behind `Arc` handles — recording
//! never takes the registry lock; the registry's `Mutex` is touched only
//! when a metric is first registered (or a handle re-resolved by name).
//! Histograms keep both the exact observation list (for nearest-rank
//! p50/p99/p999, the same rule `rtnn-serve` has always used) and a
//! power-of-two bucket array (for the Prometheus-style cumulative export).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Nearest-rank percentile of a sample set (`q` in `[0, 1]`); 0 for an
/// empty set. Sorts a copy, so callers can pass raw observation vectors.
///
/// This is *the* percentile implementation of the workspace —
/// `rtnn-serve`'s latency accounting routes through it (via
/// [`Histogram::percentile`]) rather than keeping a second copy.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Number of log buckets: powers of two from 2^-20 ms (≈ 1 ns) up to 2^42
/// ms (≈ 139 years), plus an underflow slot at index 0.
pub const NUM_BUCKETS: usize = 64;
const BUCKET_EXP_OFFSET: i32 = 21; // bucket 0 holds v <= 2^-20

/// Upper bound (inclusive, `le`) of bucket `i`; the last bucket is +inf.
pub fn bucket_upper_bound(i: usize) -> f64 {
    if i + 1 >= NUM_BUCKETS {
        f64::INFINITY
    } else {
        (2.0f64).powi(i as i32 - BUCKET_EXP_OFFSET + 1)
    }
}

fn bucket_index(v: f64) -> usize {
    if v <= 0.0 || v.is_nan() {
        return 0;
    }
    let exp = v.log2().ceil() as i64 + BUCKET_EXP_OFFSET as i64 - 1;
    exp.clamp(0, NUM_BUCKETS as i64 - 1) as usize
}

/// A log-bucketed histogram that also retains the exact observations, so
/// percentile snapshots are nearest-rank-exact while the bucket view stays
/// cheap to merge and export.
///
/// This is a plain value type (the unit of aggregation `ServiceStats`
/// embeds); the registry wraps it in `Arc<Mutex<..>>` for shared recording.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    samples: Vec<f64>,
    buckets: [u64; NUM_BUCKETS],
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            samples: Vec::new(),
            buckets: [0; NUM_BUCKETS],
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn record(&mut self, v: f64) {
        self.samples.push(v);
        self.buckets[bucket_index(v)] += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The exact observations, in recording order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.max
        }
    }

    /// Exact nearest-rank percentile of the recorded observations.
    pub fn percentile(&self, q: f64) -> f64 {
        percentile(&self.samples, q)
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// A point-in-time summary: count/sum/min/max, the exact p50/p99/p999,
    /// and the non-empty cumulative buckets (for the Prometheus export).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut cumulative = 0u64;
        for (i, &count) in self.buckets.iter().enumerate() {
            cumulative += count;
            if count > 0 {
                buckets.push((bucket_upper_bound(i), cumulative));
            }
        }
        HistogramSnapshot {
            count: self.len() as u64,
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            p50: self.percentile(0.50),
            p99: self.percentile(0.99),
            p999: self.percentile(0.999),
            buckets,
        }
    }
}

/// Frozen view of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
    /// Exact nearest-rank median.
    pub p50: f64,
    /// Exact nearest-rank 99th percentile.
    pub p99: f64,
    /// Exact nearest-rank 99.9th percentile.
    pub p999: f64,
    /// `(upper_bound, cumulative_count)` for every non-empty bucket, in
    /// increasing bound order. The final implicit `+inf` bucket equals
    /// `count`.
    pub buckets: Vec<(f64, u64)>,
}

/// A shared counter handle: add with relaxed atomics, no lock.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A shared gauge handle: last-write-wins f64, stored as bits in an atomic.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0.0f64.to_bits())))
    }
}

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A shared histogram handle (mutex around the value type; held only for
/// the duration of one record or snapshot).
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle(Arc<Mutex<Histogram>>);

impl HistogramHandle {
    /// Record one observation.
    pub fn record(&self, v: f64) {
        self.0.lock().expect("histogram lock").record(v);
    }

    /// Snapshot the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0.lock().expect("histogram lock").snapshot()
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(HistogramHandle),
}

/// Name-keyed registry of counters, gauges and histograms. Registration
/// (first use of a name) takes the map lock; recording through the returned
/// handles never does.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name` (created on first use).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind —
    /// a naming-schema violation worth failing loudly on.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.metrics.lock().expect("registry lock");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("telemetry metric {name:?} is already registered with another kind"),
        }
    }

    /// The gauge registered under `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.metrics.lock().expect("registry lock");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("telemetry metric {name:?} is already registered with another kind"),
        }
    }

    /// The histogram registered under `name` (created on first use).
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        let mut map = self.metrics.lock().expect("registry lock");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(HistogramHandle::default()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("telemetry metric {name:?} is already registered with another kind"),
        }
    }

    /// Freeze every metric. Entries are in lexicographic name order (the
    /// registry is a `BTreeMap`), so exports are deterministic.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.metrics.lock().expect("registry lock");
        let mut snap = MetricsSnapshot::default();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => snap.counters.push((name.clone(), c.get())),
                Metric::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
                Metric::Histogram(h) => snap.histograms.push((name.clone(), h.snapshot())),
            }
        }
        snap
    }
}

/// Frozen view of a [`MetricsRegistry`], name-sorted within each kind.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` per counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge.
    pub gauges: Vec<(String, f64)>,
    /// `(name, snapshot)` per histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Look up a counter by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Look up a gauge by exact name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Look up a histogram by exact name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let samples = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&samples, 0.0), 1.0);
        assert_eq!(percentile(&samples, 0.5), 2.0);
        assert_eq!(percentile(&samples, 0.75), 3.0);
        assert_eq!(percentile(&samples, 0.99), 4.0);
        assert_eq!(percentile(&samples, 1.0), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn histogram_percentiles_match_the_shared_rule() {
        let mut h = Histogram::new();
        for v in [5.0, 1.0, 9.0, 3.0, 7.0] {
            h.record(v);
        }
        assert_eq!(h.len(), 5);
        assert_eq!(h.percentile(0.5), percentile(h.samples(), 0.5));
        assert_eq!(h.percentile(0.999), 9.0);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 9.0);
        assert_eq!(h.sum(), 25.0);
    }

    #[test]
    fn buckets_are_cumulative_and_cover_all_observations() {
        let mut h = Histogram::new();
        for v in [0.0, -1.0, 0.5, 1.0, 2.0, 1e12] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 6);
        let last = snap.buckets.last().unwrap();
        assert_eq!(last.1, 6, "cumulative counts end at the total");
        assert!(
            snap.buckets
                .windows(2)
                .all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1),
            "bounds and cumulative counts are increasing: {:?}",
            snap.buckets
        );
        // Non-positive observations land in the underflow bucket.
        assert!(snap.buckets[0].1 >= 2);
    }

    #[test]
    fn bucket_bounds_bracket_their_observations() {
        for v in [1e-7, 0.3, 1.0, 1.5, 1000.0, 1e13] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i), "v {v} bucket {i}");
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1), "v {v} bucket {i}");
            }
        }
        assert!(bucket_upper_bound(NUM_BUCKETS - 1).is_infinite());
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = Histogram::new();
        a.record(1.0);
        let mut b = Histogram::new();
        b.record(10.0);
        b.record(5.0);
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.max(), 10.0);
        assert_eq!(a.sum(), 16.0);
        assert_eq!(a.snapshot().buckets.last().unwrap().1, 3);
    }

    #[test]
    fn merge_into_empty_and_single_sample_percentiles() {
        // n=1: every quantile is the one observation (nearest-rank:
        // rank = ceil(q*1).clamp(1,1) = 1).
        let mut single = Histogram::new();
        single.record(7.5);
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(single.percentile(q), 7.5, "q={q}");
        }
        // Merging a one-sample histogram into an empty one reproduces it
        // exactly, including min/max (the empty side's sentinels must not
        // leak through).
        let mut empty = Histogram::new();
        empty.merge(&single);
        assert_eq!(empty.snapshot(), single.snapshot());
        assert_eq!(empty.min(), 7.5);
        assert_eq!(empty.max(), 7.5);
        // And the other direction: merging empty changes nothing.
        let before = single.snapshot();
        single.merge(&Histogram::new());
        assert_eq!(single.snapshot(), before);
    }

    #[test]
    fn merge_of_all_equal_samples_keeps_the_degenerate_distribution() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for _ in 0..3 {
            a.record(2.0);
        }
        for _ in 0..5 {
            b.record(2.0);
        }
        a.merge(&b);
        let snap = a.snapshot();
        assert_eq!(snap.count, 8);
        assert_eq!(snap.sum, 16.0);
        assert_eq!((snap.min, snap.max), (2.0, 2.0));
        assert_eq!((snap.p50, snap.p99, snap.p999), (2.0, 2.0, 2.0));
        assert_eq!(snap.buckets.len(), 1, "all samples share one log bucket");
        assert_eq!(snap.buckets[0].1, 8);
    }

    #[test]
    fn cross_bucket_merge_equals_the_single_histogram() {
        // Samples spanning many log2 buckets (plus the underflow slot),
        // split across two histograms in interleaved order: merging must
        // be indistinguishable from recording everything into one.
        let samples: Vec<f64> = vec![
            1e-9, 0.25, 0.5, 1.0, 3.0, 8.0, 100.0, 5000.0, 1e7, 0.75, 42.0,
        ];
        let mut merged = Histogram::new();
        let mut other = Histogram::new();
        let mut reference = Histogram::new();
        for (i, &v) in samples.iter().enumerate() {
            if i % 2 == 0 {
                merged.record(v);
            } else {
                other.record(v);
            }
        }
        merged.merge(&other);
        // The reference records the same multiset in merge order (merge
        // appends `other`'s samples after `merged`'s own).
        for &v in samples
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 2 == 0)
            .map(|(_, v)| v)
        {
            reference.record(v);
        }
        for &v in samples
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 2 == 1)
            .map(|(_, v)| v)
        {
            reference.record(v);
        }
        assert_eq!(merged.samples(), reference.samples());
        assert_eq!(merged.snapshot(), reference.snapshot());
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(merged.percentile(q), reference.percentile(q), "q={q}");
        }
    }

    #[test]
    fn registry_handles_share_state_and_snapshot_deterministically() {
        let reg = MetricsRegistry::new();
        let c1 = reg.counter("b.count");
        let c2 = reg.counter("b.count");
        c1.add(2);
        c2.add(3);
        reg.gauge("a.depth").set(4.5);
        reg.histogram("c.lat").record(7.0);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("b.count"), Some(5));
        assert_eq!(snap.gauge("a.depth"), Some(4.5));
        assert_eq!(snap.histogram("c.lat").unwrap().count, 1);
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    #[should_panic(expected = "another kind")]
    fn kind_collisions_fail_loudly() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }
}
