//! Continuous profiling: rolling per-signature stage-timing statistics.
//!
//! A [`SignatureProfiler`] folds every pipeline execution's per-stage
//! device timings into per-**signature** rolling statistics, where a
//! signature is the `(plan kind, scene-density bucket, backend)` triple the
//! ROADMAP `AutoTuner` keys its decisions on. Each stage keeps an
//! observation count, an exponentially-decayed mean (so the profile drifts
//! with the workload instead of averaging over its whole history) and an
//! exact [`Histogram`] for p50/p99 — the same log-bucketed type the rest of
//! the telemetry layer snapshots.
//!
//! Producers record through [`Telemetry::profile`](crate::Telemetry::profile)
//! (a no-op unless a profiler is attached *and* the sink's level records
//! metrics), so profiling rides behind the existing `RTNN_TELEMETRY` knob
//! and inherits the workspace invariant that observing never changes query
//! results. The global sink attaches a profiler when the validated
//! `RTNN_PROFILE` knob is on; private sinks attach one explicitly via
//! [`Telemetry::enable_profiler`](crate::Telemetry::enable_profiler).
//!
//! Memory behavior: the map grows with *distinct signatures* (a handful per
//! deployment), and each stage's histogram keeps exact samples like every
//! other telemetry histogram — bounded by the run, not by the signature
//! count.

use std::collections::BTreeMap;

use crate::metrics::Histogram;

/// Default exponential-decay factor for the rolling mean: each new
/// observation moves the mean `alpha` of the way toward itself.
pub const DEFAULT_DECAY_ALPHA: f64 = 0.2;

/// The density bucket a scene of `points` points profiles under:
/// `floor(log2(points))`, so scenes within a power of two of each other
/// share a profile (0 for empty or single-point scenes).
pub fn density_bucket(points: usize) -> u32 {
    if points <= 1 {
        0
    } else {
        usize::BITS - 1 - points.leading_zeros()
    }
}

/// A profile key: the `(plan kind, scene-density bucket, backend)` triple
/// under which stage timings are aggregated.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Signature {
    /// Plan kind label (`"knn"` / `"range"` / `"batch"`).
    pub plan_kind: String,
    /// [`density_bucket`] of the scene's point count.
    pub density_bucket: u32,
    /// Backend name (`Backend::name()`: `"gpusim"`, `"optix-shim"`, ...).
    pub backend: String,
}

impl Signature {
    /// The signature a sample with these coordinates profiles under.
    pub fn new(plan_kind: &str, points: usize, backend: &str) -> Self {
        Signature {
            plan_kind: plan_kind.to_string(),
            density_bucket: density_bucket(points),
            backend: backend.to_string(),
        }
    }

    /// Human-readable key, e.g. `knn/2^13/gpusim`.
    pub fn label(&self) -> String {
        format!(
            "{}/2^{}/{}",
            self.plan_kind, self.density_bucket, self.backend
        )
    }
}

/// One pipeline execution, as the profiler sees it: the signature
/// coordinates plus the per-stage simulated device milliseconds from the
/// execution's `PipelineTrace`.
#[derive(Debug, Clone, Copy)]
pub struct ProfileSample<'a> {
    /// Plan kind label (`"knn"` / `"range"` / `"batch"`).
    pub plan_kind: &'a str,
    /// Number of indexed points in the scene (bucketed by
    /// [`density_bucket`]).
    pub points: usize,
    /// Backend name.
    pub backend: &'a str,
    /// Queries answered by this execution.
    pub queries: u64,
    /// Per-stage `(label, device_ms)` pairs, in pipeline order.
    pub stages: &'a [(&'static str, f64)],
}

/// Rolling statistics of one stage (or of the whole pipeline) under one
/// signature.
#[derive(Debug, Clone, Default)]
struct StageStats {
    count: u64,
    decayed_mean: f64,
    hist: Histogram,
}

impl StageStats {
    fn observe(&mut self, ms: f64, alpha: f64) {
        if self.count == 0 {
            self.decayed_mean = ms;
        } else {
            self.decayed_mean += alpha * (ms - self.decayed_mean);
        }
        self.count += 1;
        self.hist.record(ms);
    }

    fn freeze(&self, stage: &str) -> StageProfile {
        StageProfile {
            stage: stage.to_string(),
            count: self.count,
            mean_ms: self.decayed_mean,
            p50_ms: self.hist.percentile(0.5),
            p99_ms: self.hist.percentile(0.99),
            max_ms: self.hist.max(),
        }
    }
}

#[derive(Debug, Clone, Default)]
struct SignatureStats {
    executions: u64,
    queries: u64,
    total: StageStats,
    stages: BTreeMap<&'static str, StageStats>,
}

/// Folds [`ProfileSample`]s into rolling per-[`Signature`] stage statistics.
#[derive(Debug)]
pub struct SignatureProfiler {
    alpha: f64,
    profiles: BTreeMap<Signature, SignatureStats>,
}

impl Default for SignatureProfiler {
    fn default() -> Self {
        Self::new(DEFAULT_DECAY_ALPHA)
    }
}

impl SignatureProfiler {
    /// A profiler whose decayed means move `alpha` (clamped to `(0, 1]`)
    /// of the way toward each new observation.
    pub fn new(alpha: f64) -> Self {
        SignatureProfiler {
            alpha: if alpha > 0.0 {
                alpha.min(1.0)
            } else {
                DEFAULT_DECAY_ALPHA
            },
            profiles: BTreeMap::new(),
        }
    }

    /// Read the validated `RTNN_PROFILE` knob: `Some(profiler)` when on.
    /// Unset / empty / `off` is off; `on` is on; anything else is a
    /// configuration error (the process exits with a clear message, the
    /// `RTNN_TELEMETRY` discipline).
    pub fn from_env() -> Option<Self> {
        match Self::from_vars(|name| std::env::var(name).ok()) {
            Ok(on) => on.then(Self::default),
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        }
    }

    /// [`Self::from_env`] with an injectable variable source (testable).
    pub fn from_vars(get: impl Fn(&str) -> Option<String>) -> Result<bool, String> {
        let Some(raw) = get("RTNN_PROFILE") else {
            return Ok(false);
        };
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            return Ok(false);
        }
        match trimmed.to_ascii_lowercase().as_str() {
            "off" | "0" => Ok(false),
            "on" | "1" => Ok(true),
            _ => Err(format!(
                "RTNN_PROFILE={raw:?} is not a profiler switch: expected \"on\" or \
                 \"off\" (unset it to use the default, off)"
            )),
        }
    }

    /// Fold one execution into its signature's rolling statistics.
    pub fn record(&mut self, sample: &ProfileSample<'_>) {
        let sig = Signature::new(sample.plan_kind, sample.points, sample.backend);
        let stats = self.profiles.entry(sig).or_default();
        stats.executions += 1;
        stats.queries += sample.queries;
        let mut total_ms = 0.0;
        for (label, ms) in sample.stages {
            stats
                .stages
                .entry(label)
                .or_default()
                .observe(*ms, self.alpha);
            total_ms += ms;
        }
        stats.total.observe(total_ms, self.alpha);
    }

    /// Signatures profiled so far.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Freeze the current state, signatures in key order.
    pub fn snapshot(&self) -> ProfileSnapshot {
        ProfileSnapshot {
            signatures: self
                .profiles
                .iter()
                .map(|(sig, stats)| SignatureProfile {
                    signature: sig.clone(),
                    executions: stats.executions,
                    queries: stats.queries,
                    total: stats.total.freeze("total"),
                    stages: stats
                        .stages
                        .iter()
                        .map(|(label, s)| s.freeze(label))
                        .collect(),
                })
                .collect(),
        }
    }
}

/// Frozen rolling statistics of one stage under one signature.
#[derive(Debug, Clone, PartialEq)]
pub struct StageProfile {
    /// Stage label (`"Partition"`, `"Schedule"`, `"Launch"`, `"Gather"`)
    /// or `"total"` for the whole pipeline.
    pub stage: String,
    /// Observations folded in.
    pub count: u64,
    /// Exponentially-decayed mean device milliseconds.
    pub mean_ms: f64,
    /// Exact nearest-rank median device milliseconds.
    pub p50_ms: f64,
    /// Exact nearest-rank p99 device milliseconds.
    pub p99_ms: f64,
    /// Largest observation.
    pub max_ms: f64,
}

/// Frozen profile of one signature: execution/query counts plus per-stage
/// and whole-pipeline [`StageProfile`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct SignatureProfile {
    /// The signature these statistics aggregate under.
    pub signature: Signature,
    /// Pipeline executions folded in.
    pub executions: u64,
    /// Queries answered across those executions.
    pub queries: u64,
    /// Whole-pipeline (sum over stages) statistics.
    pub total: StageProfile,
    /// Per-stage statistics, stage labels in lexicographic order.
    pub stages: Vec<StageProfile>,
}

impl SignatureProfile {
    /// The profile of one stage, by label.
    pub fn stage(&self, label: &str) -> Option<&StageProfile> {
        self.stages.iter().find(|s| s.stage == label)
    }
}

/// Frozen view of a [`SignatureProfiler`] — the feed the ROADMAP
/// `AutoTuner` consumes: look up the signature an incoming query would
/// profile under and read off its measured stage timings.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProfileSnapshot {
    /// Per-signature profiles, in signature key order.
    pub signatures: Vec<SignatureProfile>,
}

impl ProfileSnapshot {
    /// Signatures profiled.
    pub fn len(&self) -> usize {
        self.signatures.len()
    }

    /// True when nothing was profiled.
    pub fn is_empty(&self) -> bool {
        self.signatures.is_empty()
    }

    /// The profile an execution with these coordinates would fold into.
    ///
    /// On an exact-signature miss the lookup falls back to an *adjacent*
    /// density bucket (±1, same plan kind and backend): a scene drifting
    /// across a power-of-two boundary keeps serving its neighbour's
    /// statistics instead of forgetting everything — the warm-start
    /// behaviour the `AutoTuner` relies on. When both neighbours exist the
    /// better-populated one wins (ties go to the lower bucket). Buckets
    /// further than one step away — and any plan-kind or backend mismatch —
    /// still return `None`.
    pub fn lookup(
        &self,
        plan_kind: &str,
        points: usize,
        backend: &str,
    ) -> Option<&SignatureProfile> {
        let sig = Signature::new(plan_kind, points, backend);
        if let Some(exact) = self.signatures.iter().find(|p| p.signature == sig) {
            return Some(exact);
        }
        self.signatures
            .iter()
            .filter(|p| {
                p.signature.plan_kind == sig.plan_kind
                    && p.signature.backend == sig.backend
                    && p.signature.density_bucket.abs_diff(sig.density_bucket) == 1
            })
            .max_by(|a, b| {
                a.executions.cmp(&b.executions).then(
                    // Reversed: the *lower* bucket wins an executions tie.
                    b.signature.density_bucket.cmp(&a.signature.density_bucket),
                )
            })
    }

    /// Serialize as JSON Lines: one record per signature, with nested
    /// per-stage statistics. Parses back with
    /// [`parse_jsonl`](crate::parse_jsonl).
    pub fn to_jsonl(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for p in &self.signatures {
            let mut stages = String::from("[");
            for (i, s) in std::iter::once(&p.total).chain(p.stages.iter()).enumerate() {
                if i > 0 {
                    stages.push(',');
                }
                let _ = write!(
                    stages,
                    "{{\"stage\":\"{}\",\"count\":{},\"mean_ms\":{},\"p50_ms\":{},\"p99_ms\":{},\"max_ms\":{}}}",
                    crate::export::json_escape(&s.stage),
                    s.count,
                    crate::export::json_f64(s.mean_ms),
                    crate::export::json_f64(s.p50_ms),
                    crate::export::json_f64(s.p99_ms),
                    crate::export::json_f64(s.max_ms),
                );
            }
            stages.push(']');
            let _ = writeln!(
                out,
                "{{\"type\":\"profile\",\"plan_kind\":\"{}\",\"density_bucket\":{},\"backend\":\"{}\",\"executions\":{},\"queries\":{},\"stages\":{}}}",
                crate::export::json_escape(&p.signature.plan_kind),
                p.signature.density_bucket,
                crate::export::json_escape(&p.signature.backend),
                p.executions,
                p.queries,
                stages,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample<'a>(
        kind: &'a str,
        points: usize,
        stages: &'a [(&'static str, f64)],
    ) -> ProfileSample<'a> {
        ProfileSample {
            plan_kind: kind,
            points,
            backend: "gpusim",
            queries: 10,
            stages,
        }
    }

    #[test]
    fn density_buckets_are_log2_floors() {
        assert_eq!(density_bucket(0), 0);
        assert_eq!(density_bucket(1), 0);
        assert_eq!(density_bucket(2), 1);
        assert_eq!(density_bucket(3), 1);
        assert_eq!(density_bucket(4), 2);
        assert_eq!(density_bucket(8191), 12);
        assert_eq!(density_bucket(8192), 13);
    }

    #[test]
    fn samples_fold_into_their_signature() {
        let mut prof = SignatureProfiler::default();
        let stages = [("Launch", 4.0), ("Gather", 0.0)];
        prof.record(&sample("knn", 5000, &stages));
        prof.record(&sample("knn", 7000, &stages)); // same bucket (2^12)
        prof.record(&sample("range", 5000, &stages));
        prof.record(&sample("knn", 50_000, &stages)); // different bucket
        assert_eq!(prof.len(), 3);
        let snap = prof.snapshot();
        let p = snap.lookup("knn", 6000, "gpusim").expect("bucket 2^12");
        assert_eq!(p.executions, 2);
        assert_eq!(p.queries, 20);
        assert_eq!(p.stage("Launch").unwrap().count, 2);
        assert_eq!(p.stage("Launch").unwrap().p50_ms, 4.0);
        assert_eq!(p.total.count, 2);
        assert_eq!(p.total.p99_ms, 4.0, "total sums the stage devices");
        assert!(snap.lookup("knn", 6000, "optix-shim").is_none());
    }

    #[test]
    fn lookup_prefers_the_exact_bucket_over_a_neighbor() {
        let mut prof = SignatureProfiler::default();
        prof.record(&sample("knn", 5000, &[("Launch", 1.0)])); // bucket 12
        prof.record(&sample("knn", 9000, &[("Launch", 9.0)])); // bucket 13
        let snap = prof.snapshot();
        let p = snap
            .lookup("knn", 6000, "gpusim")
            .expect("exact bucket hit");
        assert_eq!(p.signature.density_bucket, 12);
        assert_eq!(p.stage("Launch").unwrap().mean_ms, 1.0);
    }

    #[test]
    fn lookup_falls_back_to_an_adjacent_bucket() {
        let mut prof = SignatureProfiler::default();
        prof.record(&sample("knn", 5000, &[("Launch", 4.0)])); // bucket 12
        let snap = prof.snapshot();
        // 9000 points is bucket 13 — one step above the recorded bucket.
        let p = snap
            .lookup("knn", 9000, "gpusim")
            .expect("adjacent bucket serves the miss");
        assert_eq!(p.signature.density_bucket, 12);
        // 2500 points is bucket 11 — one step below also reaches it.
        let p = snap.lookup("knn", 2500, "gpusim").expect("lower neighbor");
        assert_eq!(p.signature.density_bucket, 12);
        // Two steps away stays a miss.
        assert!(snap.lookup("knn", 1200, "gpusim").is_none(), "bucket 10");
        assert!(snap.lookup("knn", 20_000, "gpusim").is_none(), "bucket 14");
    }

    #[test]
    fn adjacent_fallback_never_crosses_kind_or_backend() {
        let mut prof = SignatureProfiler::default();
        prof.record(&sample("knn", 5000, &[("Launch", 4.0)]));
        let snap = prof.snapshot();
        assert!(snap.lookup("range", 9000, "gpusim").is_none());
        assert!(snap.lookup("knn", 9000, "optix-shim").is_none());
    }

    #[test]
    fn adjacent_fallback_picks_the_better_populated_neighbor() {
        let mut prof = SignatureProfiler::default();
        prof.record(&sample("knn", 2500, &[("Launch", 1.0)])); // bucket 11, 1 exec
        prof.record(&sample("knn", 9000, &[("Launch", 9.0)])); // bucket 13, 2 execs
        prof.record(&sample("knn", 9000, &[("Launch", 9.0)]));
        let snap = prof.snapshot();
        // Bucket 12 is empty; both neighbors qualify, 13 has more executions.
        let p = snap.lookup("knn", 6000, "gpusim").unwrap();
        assert_eq!(p.signature.density_bucket, 13);
        // On an executions tie the lower bucket wins.
        prof.record(&sample("knn", 2500, &[("Launch", 1.0)]));
        let snap = prof.snapshot();
        let p = snap.lookup("knn", 6000, "gpusim").unwrap();
        assert_eq!(p.signature.density_bucket, 11);
    }

    #[test]
    fn decayed_mean_tracks_drift_faster_than_the_average() {
        let mut prof = SignatureProfiler::new(0.5);
        for _ in 0..20 {
            prof.record(&sample("knn", 100, &[("Launch", 1.0)]));
        }
        for _ in 0..4 {
            prof.record(&sample("knn", 100, &[("Launch", 9.0)]));
        }
        let snap = prof.snapshot();
        let launch = &snap.lookup("knn", 100, "gpusim").unwrap().stages;
        let s = launch.iter().find(|s| s.stage == "Launch").unwrap();
        // Plain average would be (20*1 + 4*9)/24 = 2.33; the decayed mean
        // has moved most of the way to the new regime.
        assert!(s.mean_ms > 7.0, "mean_ms = {}", s.mean_ms);
        // The exact histogram still remembers the old regime.
        assert_eq!(s.p50_ms, 1.0);
        assert_eq!(s.p99_ms, 9.0);
    }

    #[test]
    fn first_sample_initializes_the_mean_exactly() {
        let mut prof = SignatureProfiler::new(0.01);
        prof.record(&sample("knn", 100, &[("Launch", 42.0)]));
        let snap = prof.snapshot();
        let p = snap.lookup("knn", 100, "gpusim").unwrap();
        assert_eq!(p.stage("Launch").unwrap().mean_ms, 42.0);
    }

    #[test]
    fn env_knob_parses_and_rejects_garbage() {
        assert!(!SignatureProfiler::from_vars(|_| None).unwrap());
        assert!(!SignatureProfiler::from_vars(|_| Some(" ".into())).unwrap());
        assert!(!SignatureProfiler::from_vars(|_| Some("off".into())).unwrap());
        assert!(SignatureProfiler::from_vars(|_| Some("on".into())).unwrap());
        assert!(SignatureProfiler::from_vars(|_| Some("1".into())).unwrap());
        let err = SignatureProfiler::from_vars(|_| Some("yes".into())).unwrap_err();
        assert!(err.contains("RTNN_PROFILE"), "{err}");
    }

    #[test]
    fn snapshot_jsonl_parses_back() {
        let mut prof = SignatureProfiler::default();
        prof.record(&sample("knn", 5000, &[("Launch", 4.0), ("Gather", 0.5)]));
        let snap = prof.snapshot();
        let jsonl = snap.to_jsonl();
        let parsed = crate::parse_jsonl(&jsonl).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].get("plan_kind").unwrap().as_str(), Some("knn"));
        assert_eq!(
            parsed[0].get("density_bucket").unwrap().as_f64(),
            Some(12.0)
        );
        let stages = parsed[0].get("stages").unwrap().as_array().unwrap();
        assert_eq!(stages.len(), 3, "total + 2 stages");
        assert_eq!(stages[0].get("stage").unwrap().as_str(), Some("total"));
    }
}
