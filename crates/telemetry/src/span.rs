//! Span and event data types, plus the bounded ring buffers that hold them.
//!
//! A span is a named interval on the sink's clock with an optional parent —
//! together they form the per-request trees the serve layer exposes
//! (request → coalesced tick → per-shard stages). Attribute values are
//! numeric only: every string-shaped distinction (plan kind, backend,
//! stage) is encoded in the span *name*, which keeps snapshots trivially
//! comparable for the bit-determinism tests.
//!
//! Completed spans land in a bounded ring buffer — recording never
//! allocates without bound; when the buffer is full the *oldest* span is
//! dropped and counted, so a long-running service keeps the recent past.

use std::borrow::Cow;
use std::collections::VecDeque;

/// Identifier of one span, unique within its sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl std::fmt::Display for SpanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A completed span: a named `[start_ms, end_ms]` interval with numeric
/// attributes and an optional parent link.
#[derive(Debug, Clone, PartialEq)]
pub struct FinishedSpan {
    /// Sink-unique identifier.
    pub id: SpanId,
    /// Enclosing span, if any.
    pub parent: Option<SpanId>,
    /// Dotted name following the workspace schema (e.g. `stage.launch`,
    /// `serve.request.batch`).
    pub name: Cow<'static, str>,
    /// Start, in the sink clock's milliseconds.
    pub start_ms: f64,
    /// End, in the sink clock's milliseconds.
    pub end_ms: f64,
    /// Numeric attributes, in recording order.
    pub attrs: Vec<(Cow<'static, str>, f64)>,
}

impl FinishedSpan {
    /// Interval length in milliseconds.
    pub fn duration_ms(&self) -> f64 {
        self.end_ms - self.start_ms
    }

    /// Value of the attribute named `key`, if recorded.
    pub fn attr(&self, key: &str) -> Option<f64> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }
}

/// A point-in-time occurrence in the bounded event log.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// When it happened, in the sink clock's milliseconds.
    pub at_ms: f64,
    /// Dotted event name.
    pub name: Cow<'static, str>,
    /// Numeric attributes, in recording order.
    pub attrs: Vec<(Cow<'static, str>, f64)>,
}

/// A fixed-capacity FIFO that drops (and counts) the oldest element on
/// overflow.
#[derive(Debug)]
pub struct RingBuffer<T> {
    items: VecDeque<T>,
    capacity: usize,
    dropped: u64,
}

impl<T> RingBuffer<T> {
    /// A buffer holding at most `capacity` elements (minimum 1).
    pub fn new(capacity: usize) -> Self {
        RingBuffer {
            items: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Append, evicting the oldest element if full.
    pub fn push(&mut self, item: T) {
        if self.items.len() == self.capacity {
            self.items.pop_front();
            self.dropped += 1;
        }
        self.items.push_back(item);
    }

    /// Elements currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Number of elements currently held.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is held.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// How many elements overflow has evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl<T: Clone> RingBuffer<T> {
    /// Copy out the held elements, oldest first.
    pub fn to_vec(&self) -> Vec<T> {
        self.items.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_accessors() {
        let span = FinishedSpan {
            id: SpanId(7),
            parent: Some(SpanId(3)),
            name: Cow::Borrowed("stage.launch"),
            start_ms: 2.0,
            end_ms: 5.5,
            attrs: vec![(Cow::Borrowed("device_ms"), 3.25)],
        };
        assert_eq!(span.duration_ms(), 3.5);
        assert_eq!(span.attr("device_ms"), Some(3.25));
        assert_eq!(span.attr("missing"), None);
        assert_eq!(SpanId(7).to_string(), "7");
    }

    #[test]
    fn ring_buffer_keeps_the_recent_past() {
        let mut ring = RingBuffer::new(3);
        assert!(ring.is_empty());
        for i in 0..5 {
            ring.push(i);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.to_vec(), vec![2, 3, 4]);
        assert_eq!(ring.dropped(), 2);
    }

    #[test]
    fn ring_buffer_capacity_floor_is_one() {
        let mut ring = RingBuffer::new(0);
        ring.push("a");
        ring.push("b");
        assert_eq!(ring.to_vec(), vec!["b"]);
        assert_eq!(ring.dropped(), 1);
    }
}
