//! Streaming DBSCAN — density clustering maintained across the frames of a
//! drifting scene (the RT-DBSCAN workload on the streaming subsystem).
//!
//! Three particle blobs sit in a noisy field. Frame by frame one blob
//! drifts toward another while stragglers join and leave the scene; a
//! persistent [`rtnn_dynamic::DynamicIndex`] serves the ε-neighborhood
//! queries and an [`rtnn_analytics::StreamingDbscan`] splices only the
//! *changed* points into its cached adjacency — yet every frame's labels
//! are verified bit-equal to clustering the frame from scratch with the
//! O(n²) oracle. Midway through the drift the two blobs merge into one
//! cluster, which the per-frame counts make visible.
//!
//! Run with:
//! ```text
//! cargo run --release --example cluster_stream
//! ```

use rtnn::{RtnnConfig, SearchParams};
use rtnn_analytics::stream::FrameChange;
use rtnn_analytics::{Dbscan, StreamingDbscan};
use rtnn_baselines::dbscan_oracle;
use rtnn_dynamic::DynamicIndex;
use rtnn_gpusim::Device;
use rtnn_math::Vec3;
use rtnn_telemetry::{Telemetry, TelemetryLevel};

/// Tiny deterministic generator (xorshift) so the example needs no RNG
/// crate and produces the same scene on every run.
struct Rng(u64);

impl Rng {
    fn next_f32(&mut self) -> f32 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 40) as f32 / (1u64 << 24) as f32
    }

    fn in_cube(&mut self, center: Vec3, half: f32) -> Vec3 {
        Vec3::new(
            center.x + (self.next_f32() * 2.0 - 1.0) * half,
            center.y + (self.next_f32() * 2.0 - 1.0) * half,
            center.z + (self.next_f32() * 2.0 - 1.0) * half,
        )
    }
}

fn main() {
    // Scene: three dense blobs plus sparse background noise.
    let mut rng = Rng(0xC1D5_7EA4);
    let blob_centers = [
        Vec3::new(0.0, 0.0, 0.0),
        Vec3::new(6.0, 0.0, 0.0),
        Vec3::new(0.0, 7.0, 0.0),
    ];
    let blob_size = 500usize;
    let mut points: Vec<Vec3> = Vec::new();
    for &c in &blob_centers {
        for _ in 0..blob_size {
            points.push(rng.in_cube(c, 0.9));
        }
    }
    for _ in 0..150 {
        points.push(rng.in_cube(Vec3::new(3.0, 3.5, 0.0), 8.0));
    }
    let eps = 0.35f32;
    let min_pts = 5usize;
    println!(
        "scene: {} points (3 blobs of {blob_size} + noise), eps = {eps}, min_pts = {min_pts}",
        points.len()
    );

    let device = Device::rtx_2080();
    let config = RtnnConfig::new(SearchParams::range(eps, 64));
    let mut index = DynamicIndex::with_points(&device, config, &points);
    let mut stream = StreamingDbscan::new(Dbscan::new(eps, min_pts));

    // Record the run in a private always-on telemetry sink so the example
    // can print a snapshot (the global `RTNN_TELEMETRY` knob gates the
    // default sink instead).
    let sink = Telemetry::new(TelemetryLevel::Full);
    Telemetry::scoped(&sink, || {
        let frames = 6;
        for frame in 0..frames {
            // Drift: blob 1 (handles blob_size..2*blob_size) slides toward
            // blob 0; a few stragglers join near blob 2 and noise points
            // retire. Everything is reported to the streaming clusterer as
            // a FrameChange of stable handles.
            let mut change = FrameChange::default();
            if frame > 0 {
                for h in blob_size as u32..(2 * blob_size) as u32 {
                    let p = points[h as usize] - Vec3::new(1.0, 0.0, 0.0);
                    points[h as usize] = p;
                    index.move_point(h, p);
                    change.moved.push(h);
                }
                for _ in 0..10 {
                    let p = rng.in_cube(blob_centers[2], 0.9);
                    let handle = index.insert(p);
                    assert_eq!(handle as usize, points.len());
                    points.push(p);
                    change.inserted.push(handle);
                }
                let retire = (3 * blob_size + frame) as u32; // a noise point
                index.remove(retire);
                change.removed.push(retire);
            }

            let result = stream
                .relabel(&mut index, &change)
                .expect("relabel fits the device");
            let c = &result.clustering;
            println!(
                "frame {frame}: {} clusters, {} noise, requeried {}/{} points",
                c.num_clusters, c.num_noise, result.requeried, result.alive
            );

            // Verify: the incrementally maintained labels must be
            // bit-equal to clustering this frame's live points from
            // scratch with the brute-force oracle. Labels are compared in
            // compact space via the smallest-translated-member relabel.
            let frame_view = index.as_index().expect("frame view");
            let live: Vec<Vec3> = frame_view.index.points().to_vec();
            let handles: Vec<u32> = frame_view.handles.to_vec();
            let mut compact_of = vec![u32::MAX; c.labels.len()];
            for (i, &h) in handles.iter().enumerate() {
                compact_of[h as usize] = i as u32;
            }
            let translated = c.labels_as(&compact_of);
            let engine: Vec<Option<u32>> =
                handles.iter().map(|&h| translated[h as usize]).collect();
            let oracle = dbscan_oracle(&live, eps, min_pts);
            assert_eq!(engine, oracle, "frame {frame} disagrees with the oracle");
        }
    });

    // The drifting blob ends on top of blob 0: the final frame has one
    // cluster fewer than the first.
    println!("\ntelemetry snapshot of the run:");
    let snapshot = sink.snapshot();
    for (name, value) in &snapshot.metrics.counters {
        if name.starts_with("analytics.") {
            println!("  counter {name} = {value}");
        }
    }
    for span in snapshot.spans_named("analytics.dbscan.relabel") {
        println!(
            "  span {} [{:.2} ms] attrs {:?}",
            span.name,
            span.duration_ms(),
            span.attrs
        );
    }
    println!("streaming DBSCAN example finished ✓");
}
