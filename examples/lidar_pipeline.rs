//! A LiDAR perception micro-pipeline (the KITTI-style workload that
//! motivates the paper): estimate per-point surface normals from KNN
//! neighborhoods and use them to segment ground from obstacles.
//!
//! Run with:
//! ```text
//! cargo run --release --example lidar_pipeline
//! ```

use rtnn::{EngineConfig, GpusimBackend, Index, QueryPlan};
use rtnn_data::lidar::{self, LidarParams};
use rtnn_gpusim::Device;
use rtnn_math::Vec3;

/// Estimate the surface normal of a neighborhood from the axis variances of
/// its covariance: the normal points along the axis with the least spread.
/// For LiDAR frames (dominant ground plane plus axis-aligned structures)
/// this captures the flat-vs-vertical distinction the segmentation needs.
fn estimate_normal(points: &[Vec3], neighborhood: &[u32]) -> Vec3 {
    if neighborhood.len() < 3 {
        return Vec3::new(0.0, 0.0, 1.0);
    }
    let mut mean = Vec3::ZERO;
    for &id in neighborhood {
        mean += points[id as usize];
    }
    mean = mean / neighborhood.len() as f32;
    let mut var = Vec3::ZERO;
    for &id in neighborhood {
        let d = points[id as usize] - mean;
        var += d * d;
    }
    if var.z <= var.x && var.z <= var.y {
        Vec3::new(0.0, 0.0, 1.0)
    } else if var.x <= var.y {
        Vec3::new(1.0, 0.0, 0.0)
    } else {
        Vec3::new(0.0, 1.0, 0.0)
    }
}

fn main() {
    let cloud = lidar::generate(&LidarParams {
        num_points: 80_000,
        ..Default::default()
    });
    let points = cloud.points;
    let bounds = rtnn_math::Aabb::from_points(&points);
    println!(
        "LiDAR frame: {} points, extent {:.0} x {:.0} x {:.1} m",
        points.len(),
        bounds.extent().x,
        bounds.extent().y,
        bounds.extent().z
    );

    // One index over the frame serves every perception stage: a KNN plan
    // for normal estimation here, a different range plan further down — no
    // per-stage engine or structure rebuild.
    let device = Device::rtx_2080();
    let backend = GpusimBackend::new(&device);
    let mut index = Index::build(&backend, &points[..], EngineConfig::default());
    let results = index
        .query(&points, &QueryPlan::knn(1.5, 16))
        .expect("knn search over the frame");
    println!(
        "neighborhoods computed in simulated {:.2} ms ({} partitions, {} IS calls)",
        results.total_time_ms(),
        results.num_partitions,
        results.search_metrics.is_calls
    );

    // Normal estimation + ground segmentation.
    let mut ground = 0usize;
    let mut obstacle = 0usize;
    let mut isolated = 0usize;
    for (i, neighborhood) in results.neighbors.iter().enumerate() {
        if neighborhood.len() < 3 {
            isolated += 1;
            continue;
        }
        let normal = estimate_normal(&points, neighborhood);
        let is_flat = normal.z.abs() > 0.9;
        let is_low = points[i].z < 0.3;
        if is_flat && is_low {
            ground += 1;
        } else {
            obstacle += 1;
        }
    }
    let total = points.len() as f64;
    println!(
        "segmentation: {:.1}% ground, {:.1}% obstacle, {:.1}% isolated",
        ground as f64 / total * 100.0,
        obstacle as f64 / total * 100.0,
        isolated as f64 / total * 100.0
    );
    assert!(ground > obstacle, "a LiDAR frame is mostly ground");

    // Second perception stage against the SAME index: a tight epsilon
    // (range) query around the sensor origin for obstacle clearance — a
    // different radius and kind, answered from the warm structures.
    let probes = vec![
        Vec3::new(0.0, 0.0, 1.0),
        Vec3::new(5.0, 0.0, 1.0),
        Vec3::new(-5.0, 0.0, 1.0),
    ];
    let clearance = index
        .query(&probes, &QueryPlan::range(3.0, 256))
        .expect("clearance probe");
    for (pi, hits) in clearance.neighbors.iter().enumerate() {
        for &id in hits {
            assert!(
                probes[pi].distance(points[id as usize]) < 3.0,
                "clearance hit outside the probe radius"
            );
        }
    }
    println!(
        "clearance probes: {} returns within 3 m (simulated {:.2} ms, {:.3} ms new structure builds)",
        clearance.total_neighbors(),
        clearance.total_time_ms(),
        clearance.breakdown.bvh_ms
    );
    println!("pipeline finished ✓");
}
