//! Friends-of-friends galaxy clustering on the N-body-like dataset — the
//! cosmology workload of the paper's evaluation (the Millennium-simulation
//! trace). Two galaxies belong to the same group if they are within a
//! linking length of each other; the groups are the connected components of
//! the fixed-radius neighbor graph, which RTNN computes.
//!
//! This version is a multi-frame simulation: the galaxies differentially
//! rotate (inner shells orbit faster) and the friends-of-friends catalog is
//! recomputed every frame on a persistent [`rtnn_dynamic::DynamicIndex`].
//! Frames that only move points refit the BVH in place; the cost-model
//! policy rebuilds once the shear has degraded the frozen topology enough
//! that a fresh build is predicted to pay for itself.
//!
//! Run with:
//! ```text
//! cargo run --release --example nbody_clustering
//! ```

use rtnn::{QueryPlan, RtnnConfig, SearchParams};
use rtnn_data::dynamics::{DriftModel, DriftScene};
use rtnn_data::nbody::{self, NBodyParams};
use rtnn_dynamic::{DynamicIndex, StructureAction};
use rtnn_gpusim::Device;

/// Union-find with path compression.
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }
    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra as usize] = rb;
        }
    }
}

fn main() {
    let cloud = nbody::generate(&NBodyParams {
        num_points: 30_000,
        ..Default::default()
    });
    println!(
        "N-body trace: {} galaxies in a {:.0} Mpc/h box",
        cloud.len(),
        500.0
    );

    // Linking length: a fraction of the mean inter-particle spacing.
    let box_volume = 500.0f32.powi(3);
    let mean_spacing = (box_volume / cloud.len() as f32).cbrt();
    let linking_length = 0.3 * mean_spacing;
    println!("mean spacing {mean_spacing:.2}, linking length {linking_length:.2}");

    let device = Device::rtx_2080();
    let params = SearchParams::range(linking_length, 64);
    let config = RtnnConfig::new(params);
    let mut index = DynamicIndex::with_points(&device, config, &cloud.points);
    let mut scene = DriftScene::new(
        &cloud,
        DriftModel::NBodyOrbit { angular_step: 0.02 },
        0x5EED,
    );

    let frames = 6;
    let mut first_largest = 0usize;
    for frame in 0..frames {
        let points = scene.live_points();
        let result = index
            .search(&points)
            .expect("friends-of-friends neighbor search");

        // Connected components = friends-of-friends groups.
        let mut uf = UnionFind::new(points.len());
        for (i, neigh) in result.results.neighbors.iter().enumerate() {
            for &j in neigh {
                uf.union(i as u32, j);
            }
        }
        let mut group_sizes = std::collections::HashMap::new();
        for i in 0..points.len() as u32 {
            *group_sizes.entry(uf.find(i)).or_insert(0usize) += 1;
        }
        let mut sizes: Vec<usize> = group_sizes.values().copied().collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let groups_ge_5 = sizes.iter().filter(|&&s| s >= 5).count();
        let action = match result.action {
            StructureAction::Rebuilt => "rebuild",
            StructureAction::Refit => "refit",
            StructureAction::Reused => "reuse",
        };
        println!(
            "frame {frame}: {} groups ({groups_ge_5} with ≥5 members, largest {}), \
             {} edges, {action} (quality {:.3}), simulated {:.2} ms",
            sizes.len(),
            sizes[0],
            result.results.total_neighbors(),
            result.quality_ratio,
            result.results.total_time_ms(),
        );

        // A hierarchically clustered distribution must keep producing rich
        // groups and many isolated field galaxies, every frame — rigid-ish
        // rotation shears the cloud but does not destroy its clustering.
        assert!(sizes[0] >= 10, "expected at least one rich cluster");
        assert!(sizes.len() > 100, "expected many separate groups");
        if frame == 0 {
            first_largest = sizes[0];
        }

        // Advance the orbital shear and feed the motion to the index.
        let update = scene.step();
        for &slot in &update.moved {
            index.move_point(slot, scene.position(slot).unwrap());
        }
    }

    // After the last frame, answer a heterogeneous probe through the
    // per-frame Index view: a KNN plan at a different radius than the FoF
    // linking length, reusing the structures the streaming index maintains.
    let centres = scene.live_points();
    let probe_queries: Vec<_> = centres.iter().step_by(97).copied().collect();
    let mut view = index.as_index().expect("frame view");
    let knn = view
        .query(&probe_queries, &QueryPlan::knn(2.0 * mean_spacing, 8))
        .expect("density probe");
    drop(view);
    for (qi, q) in probe_queries.iter().enumerate() {
        for &h in &knn.neighbors[qi] {
            let p = index.position(h).expect("live handle");
            assert!(q.distance(p) < 2.0 * mean_spacing);
        }
    }
    println!(
        "density probe via Index view: {} links over {} probes at r = {:.2}",
        knn.total_neighbors(),
        probe_queries.len(),
        2.0 * mean_spacing
    );

    let m = index.frame_metrics();
    println!(
        "{} frames: {} rebuilds, {} refits; amortized {:.2} ms/frame (structure {:.3} ms/frame)",
        m.frames,
        m.rebuilds,
        m.refits,
        m.amortized_frame_ms(),
        m.amortized_structure_ms(),
    );
    assert!(
        m.rebuilds < m.frames,
        "orbital shear must not force a rebuild every frame"
    );
    assert!(first_largest >= 10);
    println!("friends-of-friends clustering finished ✓");
}
