//! Friends-of-friends galaxy clustering on the N-body-like dataset — the
//! cosmology workload of the paper's evaluation (the Millennium-simulation
//! trace). Two galaxies belong to the same group if they are within a
//! linking length of each other; the groups are the connected components of
//! the fixed-radius neighbor graph, which RTNN computes.
//!
//! Run with:
//! ```text
//! cargo run --release --example nbody_clustering
//! ```

use rtnn::{Rtnn, RtnnConfig, SearchParams};
use rtnn_data::nbody::{self, NBodyParams};
use rtnn_gpusim::Device;

/// Union-find with path compression.
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }
    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra as usize] = rb;
        }
    }
}

fn main() {
    let cloud = nbody::generate(&NBodyParams {
        num_points: 60_000,
        ..Default::default()
    });
    let points = cloud.points;
    println!(
        "N-body trace: {} galaxies in a {:.0} Mpc/h box",
        points.len(),
        500.0
    );

    // Linking length: a fraction of the mean inter-particle spacing.
    let box_volume = 500.0f32.powi(3);
    let mean_spacing = (box_volume / points.len() as f32).cbrt();
    let linking_length = 0.3 * mean_spacing;
    println!("mean spacing {mean_spacing:.2}, linking length {linking_length:.2}");

    let device = Device::rtx_2080();
    let params = SearchParams::range(linking_length, 64);
    let engine = Rtnn::new(&device, RtnnConfig::new(params));
    let result = engine
        .search(&points, &points)
        .expect("friends-of-friends neighbor search");
    println!(
        "neighbor graph built in simulated {:.2} ms ({} partitions -> {} bundles, {} edges)",
        result.total_time_ms(),
        result.num_partitions,
        result.num_bundles,
        result.total_neighbors()
    );

    // Connected components = friends-of-friends groups.
    let mut uf = UnionFind::new(points.len());
    for (i, neigh) in result.neighbors.iter().enumerate() {
        for &j in neigh {
            uf.union(i as u32, j);
        }
    }
    let mut group_sizes = std::collections::HashMap::new();
    for i in 0..points.len() as u32 {
        *group_sizes.entry(uf.find(i)).or_insert(0usize) += 1;
    }
    let mut sizes: Vec<usize> = group_sizes.values().copied().collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    let groups_ge_5 = sizes.iter().filter(|&&s| s >= 5).count();
    println!(
        "{} groups total, {} with at least 5 members, largest group has {} galaxies",
        sizes.len(),
        groups_ge_5,
        sizes[0]
    );
    // A hierarchically clustered distribution must produce some rich groups
    // and many isolated field galaxies.
    assert!(sizes[0] >= 10, "expected at least one rich cluster");
    assert!(sizes.len() > 100, "expected many separate groups");
    println!("friends-of-friends clustering finished ✓");
}
