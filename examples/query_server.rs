//! A concurrent query server over one shared scene: many client threads
//! submit small KNN/range requests through a channel-based handle, the
//! dispatcher coalesces whatever is in flight into one fused batch per
//! tick, and a spatially sharded index fans each tick out over the worker
//! pool — with every response equal to a direct `Index::query` call
//! (bit-equal KNN, set-equal range). An `AutoTuner` rides on the service
//! and picks the stage-override rung once per coalesced tick.
//!
//! Run with:
//! ```text
//! cargo run --release --example query_server
//! # knobs: RTNN_SERVE_THREADS=4 RTNN_SERVE_WINDOW_US=500
//! ```

use rtnn::{AutoTuner, EngineConfig, GpusimBackend, Index, QueryPlan};
use rtnn_data::uniform::{self, UniformParams};
use rtnn_gpusim::Device;
use rtnn_math::Vec3;
use rtnn_serve::{QueryService, Request, ServeConfig, ShardedIndex};
use rtnn_telemetry::{FlightRecorder, SloConfig, Telemetry, TelemetryLevel};
use std::sync::{Arc, Mutex};

/// Per-query sorted copy: the canonical form for comparing range results
/// produced at different opt levels.
fn sorted(neighbors: &[Vec<u32>]) -> Vec<Vec<u32>> {
    neighbors
        .iter()
        .map(|n| {
            let mut n = n.clone();
            n.sort_unstable();
            n
        })
        .collect()
}

fn main() {
    // 1. Serving configuration from the environment (validated: garbage in
    //    RTNN_SERVE_THREADS / RTNN_SERVE_WINDOW_US is a startup error).
    let config = ServeConfig::from_env();
    config.apply_thread_limit();
    println!(
        "serve config: window {} µs, max batch {}, coalescing {}",
        config.window_us, config.max_batch, config.coalescing
    );

    // 2. One shared scene: a 30k-point cloud served by 4 Morton-range
    //    shards on the simulated RTX 2080.
    let cloud = uniform::generate(&UniformParams {
        num_points: 30_000,
        seed: 11,
        ..Default::default()
    });
    let points = cloud.points.clone();
    let device = Device::rtx_2080();
    let backend = GpusimBackend::new(&device);
    let mut sharded = ShardedIndex::build(&backend, &points, EngineConfig::default(), 4);
    println!(
        "scene: {} points in {} shards of {:?}",
        sharded.len(),
        sharded.num_shards(),
        sharded.shard_sizes()
    );

    // 3. Client traffic: 6 threads, each submitting 8 requests with its own
    //    parameters (mixed KNN/range), all against the same service.
    let num_clients = 6;
    let per_client = 8;
    let requests_of = |client: usize| -> Vec<Request> {
        (0..per_client)
            .map(|i| {
                let stride = 29 + client * 7 + i;
                let queries: Vec<Vec3> = points
                    .iter()
                    .skip(client * 501 + i * 97)
                    .step_by(stride)
                    .take(16)
                    .copied()
                    .collect();
                let plan = match (client + i) % 3 {
                    0 => QueryPlan::knn(2.0, 8),
                    1 => QueryPlan::range(1.6, 100_000),
                    _ => QueryPlan::knn(2.8, 4),
                };
                Request::new(queries, plan)
            })
            .collect()
    };

    // Reference results from a direct (unserved) index — the bit-equality
    // oracle for every response.
    let mut reference = Index::build(&backend, &points[..], EngineConfig::default());
    let expected: Vec<Vec<Vec<Vec<u32>>>> = (0..num_clients)
        .map(|c| {
            requests_of(c)
                .iter()
                .map(|r| reference.query(&r.queries, &r.plan).unwrap().neighbors)
                .collect()
        })
        .collect();

    // 4. Serve: the dispatcher owns the sharded index; clients only hold
    //    channel handles. The service drains and exits once every client
    //    handle is dropped.
    //    The run records to a private telemetry sink (always-on here so the
    //    example can print a snapshot; the global `RTNN_TELEMETRY` knob
    //    gates the default sink instead).
    //    A flight recorder rides along: every request leaves a trace in a
    //    bounded ring, and an SLO monitor watches the rolling p99 — on a
    //    breach it pins the worst-in-window trace as the exemplar to debug.
    let sink = Telemetry::new(TelemetryLevel::Full);
    let slo = SloConfig {
        quantile: 0.99,
        target_ms: 5.0,
        window: 32,
        min_samples: 8,
    };
    let flight = Arc::new(Mutex::new(FlightRecorder::with_slo(256, slo)));
    //    The auto tuner makes one stage-override decision per coalesced
    //    tick, recorded on the tick's outcome — tuning changes which
    //    pipeline stages run, never the responses.
    let tuner = Arc::new(Mutex::new(AutoTuner::new(42)));
    let (service, client) = QueryService::with_telemetry(config, sink.clone());
    let service = service
        .with_flight_recorder(flight.clone())
        .with_auto_tuner(tuner.clone());
    let stats = crossbeam::thread::scope(|s| {
        for c in 0..num_clients {
            let client = client.clone();
            let requests = requests_of(c);
            let expected = &expected[c];
            s.spawn(move |_| {
                for (ri, request) in requests.into_iter().enumerate() {
                    // Ticks may run at a tuner-decided opt level, and range
                    // results are set-equal (not bit-equal) across levels.
                    let is_range = request.plan.kind_label() == "range";
                    let response = client.call(request);
                    if is_range {
                        assert_eq!(
                            sorted(response.neighbors()),
                            sorted(&expected[ri]),
                            "client {c} request {ri}: served response must be \
                             set-equal to a direct Index::query"
                        );
                    } else {
                        assert_eq!(
                            response.neighbors(),
                            &expected[ri],
                            "client {c} request {ri}: served response must be \
                             bit-equal to a direct Index::query"
                        );
                    }
                }
            });
        }
        drop(client);
        service.run(&mut sharded)
    })
    .expect("client thread panicked");

    // 5. What the service saw.
    println!(
        "served {} requests in {} ticks (mean batch {:.1}, largest {}), {} queries total",
        stats.requests,
        stats.ticks,
        stats.mean_tick_requests(),
        stats.max_tick_requests,
        stats.queries
    );
    println!(
        "latency: p50 {:.0} µs, p99 {:.0} µs, p999 {:.0} µs (wall); simulated device time {:.2} ms",
        stats.latency_percentile(0.5),
        stats.latency_percentile(0.99),
        stats.latency_p999(),
        stats.sim_ms
    );
    let timing = sharded.last_timing();
    println!(
        "last tick critical path {:.3} ms across {} active shards (skew {:.2}×)",
        timing.critical_path_ms(),
        timing.active_shards(),
        timing.skew()
    );

    // 6. The telemetry view of the same run: serving metrics plus one span
    //    tree per request (request → tick → per-shard stages).
    let snapshot = sink.snapshot();
    println!("\ntelemetry snapshot ({} spans):", snapshot.spans.len());
    for (name, value) in &snapshot.metrics.counters {
        println!("  counter {name} = {value}");
    }
    for (name, hist) in &snapshot.metrics.histograms {
        println!(
            "  histogram {name}: n={} p50={:.1} p99={:.1} p999={:.1}",
            hist.count, hist.p50, hist.p99, hist.p999
        );
    }
    if let Some(request) = snapshot.roots().first() {
        println!("  one request's span tree:");
        for span in snapshot.subtree(request.id) {
            let depth = {
                let mut d = 0;
                let mut cursor = span.parent;
                while let Some(p) = cursor {
                    d += 1;
                    cursor = snapshot.span(p).and_then(|s| s.parent);
                }
                d
            };
            println!(
                "  {:indent$}{} [{:.3} ms]",
                "",
                span.name,
                span.duration_ms(),
                indent = 4 + 2 * depth
            );
        }
    }
    // 7. The flight recorder's view: every request left a trace, and the
    //    SLO monitor's event log says when the rolling p99 crossed the
    //    target — each breach pinning its worst-in-window exemplar.
    let flight = flight.lock().expect("flight recorder lock poisoned");
    println!(
        "\nflight recorder: {} trace(s) held ({} dropped), {} SLO event(s), {} pinned exemplar(s)",
        flight.len(),
        flight.dropped(),
        flight.events().len(),
        flight.pinned().len()
    );
    for event in flight.events() {
        match event {
            rtnn_telemetry::SloEvent::Breach {
                at_ms,
                observed_ms,
                target_ms,
                quantile,
                ..
            } => println!(
                "  breach  at {at_ms:.2} ms: p{:.0} = {observed_ms:.3} ms over the \
                 {target_ms:.1} ms target",
                quantile * 100.0
            ),
            rtnn_telemetry::SloEvent::Recover {
                at_ms, observed_ms, ..
            } => println!("  recover at {at_ms:.2} ms: back to {observed_ms:.3} ms"),
        }
    }
    if let Some(exemplar) = flight.pinned().first() {
        let trace = &exemplar.trace;
        println!(
            "  exemplar: {} [{:.3} ms, {} queries, tick of {}]{}",
            trace.name,
            trace.latency_ms,
            trace.queries,
            trace.tick_requests,
            trace
                .dominant_stage()
                .map(|(stage, ms)| format!(", dominated by {stage} ({ms:.3} ms)"))
                .unwrap_or_default()
        );
    }
    // 8. What the auto tuner learned: one decision per coalesced tick,
    //    summarised per (plan kind, density bucket, backend) signature.
    let tuner = tuner.lock().expect("auto tuner lock poisoned");
    println!(
        "\nauto tuner: {} decision(s) across {} signature(s):",
        tuner.decisions(),
        tuner.report().len()
    );
    for sig in tuner.report() {
        println!(
            "  {}: {} decision(s), {}/4 arms measured, steady choice {:?}",
            sig.label(),
            sig.decisions,
            sig.measured_arms,
            sig.choice
        );
    }
    println!(
        "\nall {} responses verified against direct Index::query ✓",
        stats.requests
    );
}
