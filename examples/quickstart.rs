//! Quickstart: build a small point cloud, run both search modes on the
//! simulated RTX 2080, and verify the results against a brute-force scan.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use rtnn::verify::{brute_force_knn, check_all};
use rtnn::{Rtnn, RtnnConfig, SearchParams};
use rtnn_data::uniform::{self, UniformParams};
use rtnn_gpusim::Device;

fn main() {
    // 1. A uniformly distributed cloud of 50k points; the queries are the
    //    points themselves (the common case in physics simulation).
    let cloud = uniform::generate(&UniformParams {
        num_points: 50_000,
        seed: 7,
        ..Default::default()
    });
    let points = cloud.points.clone();
    let queries: Vec<_> = points.iter().step_by(10).copied().collect();
    println!("points: {}, queries: {}", points.len(), queries.len());

    // 2. The simulated GPU the search runs on.
    let device = Device::rtx_2080();

    // 3. Fixed-radius search: up to 32 neighbors within r = 2.5.
    let range_params = SearchParams::range(2.5, 32);
    let engine = Rtnn::new(&device, RtnnConfig::new(range_params));
    let range = engine.search(&points, &queries).expect("range search");
    println!(
        "range search: {} neighbor links, {} partitions -> {} bundles, simulated {:.2} ms",
        range.total_neighbors(),
        range.num_partitions,
        range.num_bundles,
        range.total_time_ms()
    );
    for (label, ms) in range.breakdown.components() {
        println!("  {label:<6} {ms:>8.3} ms");
    }
    check_all(&points, &queries, &range_params, &range.neighbors)
        .expect("range results match the brute-force oracle");

    // 4. KNN search: the 8 nearest neighbors within the same radius.
    let knn_params = SearchParams::knn(2.5, 8);
    let engine = Rtnn::new(&device, RtnnConfig::new(knn_params));
    let knn = engine.search(&points, &queries).expect("knn search");
    println!(
        "knn search:   {} neighbor links, simulated {:.2} ms ({} IS calls)",
        knn.total_neighbors(),
        knn.total_time_ms(),
        knn.search_metrics.is_calls
    );
    check_all(&points, &queries, &knn_params, &knn.neighbors)
        .expect("knn results match the brute-force oracle");

    // 5. Spot-check one query against the oracle explicitly.
    let q = 3;
    let expected = brute_force_knn(&points, queries[q], 2.5, 8);
    assert_eq!(knn.neighbors[q], expected);
    println!("query {q}: nearest neighbors {:?}", &knn.neighbors[q]);
    println!("all results verified against the brute-force oracle ✓");
}
