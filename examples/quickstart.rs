//! Quickstart for the two-level Index/QueryPlan API: build one `Index` over
//! a point cloud, answer heterogeneous typed plans against it (KNN, range,
//! and a mixed batch), and verify everything against a brute-force scan.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use rtnn::verify::{brute_force_knn, check_all};
use rtnn::{
    Backend, EngineConfig, GpusimBackend, Index, PlanSlice, QueryPlan, SearchParams, StageOverrides,
};
use rtnn_data::uniform::{self, UniformParams};
use rtnn_gpusim::Device;

fn main() {
    // 1. A uniformly distributed cloud of 50k points; the queries are the
    //    points themselves (the common case in physics simulation).
    let cloud = uniform::generate(&UniformParams {
        num_points: 50_000,
        seed: 7,
        ..Default::default()
    });
    let points = cloud.points.clone();
    let queries: Vec<_> = points.iter().step_by(10).copied().collect();
    println!("points: {}, queries: {}", points.len(), queries.len());

    // 2. Pick an execution backend (the simulated RTX 2080 by default;
    //    `OptixBackend` is the real-hardware shim, `BruteForceBackend` in
    //    rtnn-baselines the exhaustive oracle) and build the index ONCE.
    let device = Device::rtx_2080();
    let backend = GpusimBackend::new(&device);
    let mut index = Index::build(&backend, &points[..], EngineConfig::default());

    // 3. Fixed-radius plan: up to 32 neighbors within r = 2.5.
    let range_plan = QueryPlan::range(2.5, 32);
    let range = index.query(&queries, &range_plan).expect("range search");
    println!(
        "range search: {} neighbor links, {} partitions -> {} bundles, simulated {:.2} ms",
        range.total_neighbors(),
        range.num_partitions,
        range.num_bundles,
        range.total_time_ms()
    );
    for (label, ms) in range.breakdown.components() {
        println!("  {label:<6} {ms:>8.3} ms");
    }
    check_all(
        &points,
        &queries,
        &SearchParams::range(2.5, 32),
        &range.neighbors,
    )
    .expect("range results match the brute-force oracle");

    // 4. KNN plan against the SAME index: the grid and every structure the
    //    range plan built are still warm — no engine reconstruction.
    let knn_plan = QueryPlan::knn(2.5, 8);
    let knn = index.query(&queries, &knn_plan).expect("knn search");
    println!(
        "knn search:   {} neighbor links, simulated {:.2} ms ({} IS calls, {:.3} ms rebuilt structures)",
        knn.total_neighbors(),
        knn.total_time_ms(),
        knn.search_metrics.is_calls,
        knn.breakdown.bvh_ms
    );
    check_all(
        &points,
        &queries,
        &SearchParams::knn(2.5, 8),
        &knn.neighbors,
    )
    .expect("knn results match the brute-force oracle");

    // 5. A heterogeneous batch: different radii AND different query kinds
    //    answered in one call, sharing a single scheduling pass.
    let half = queries.len() as u32 / 2;
    let batch = QueryPlan::Batch(vec![
        PlanSlice::new(QueryPlan::knn(2.5, 8), (0..half).collect()),
        PlanSlice::new(
            QueryPlan::range(1.5, 64),
            (half..queries.len() as u32).collect(),
        ),
    ]);
    let mixed = index.query(&queries, &batch).expect("mixed batch");
    println!(
        "mixed batch:  {} neighbor links across 2 plans, simulated {:.2} ms, {} cached structures",
        mixed.total_neighbors(),
        mixed.total_time_ms(),
        index.cached_structures()
    );
    // The KNN half of the batch is bit-identical to the single-plan call.
    for qi in 0..half as usize {
        assert_eq!(mixed.neighbors[qi], knn.neighbors[qi]);
    }

    // 6. Spot-check one query against the oracle explicitly.
    let q = 3;
    let expected = brute_force_knn(&points, queries[q], 2.5, 8);
    assert_eq!(knn.neighbors[q], expected);
    println!("query {q}: nearest neighbors {:?}", &knn.neighbors[q]);

    // 7. Peek inside the execution pipeline: every result carries a
    //    per-stage meter, and `StageOverrides` can disable or replace one
    //    stage for a single call — here the coherence reordering is turned
    //    off while partitioning, launching and gathering stay untouched.
    println!("per-stage breakdown of the knn call:");
    for stage in knn.trace.stages() {
        println!(
            "  {:<9} {:>9.3} ms simulated  ({} invocation(s))",
            stage.kind.label(),
            stage.device_ms,
            stage.invocations
        );
    }
    let unordered = index
        .query_with(&queries, &knn_plan, StageOverrides::without_reordering())
        .expect("knn search without reordering");
    assert_eq!(
        unordered.neighbors, knn.neighbors,
        "stage toggles change performance, never results"
    );
    println!(
        "reordering off: schedule stage {:.3} ms (was {:.3} ms), search {:.2} ms (was {:.2} ms)",
        unordered.trace.stage(rtnn::StageKind::Schedule).device_ms,
        knn.trace.stage(rtnn::StageKind::Schedule).device_ms,
        unordered.breakdown.search_ms,
        knn.breakdown.search_ms,
    );
    // 8. The same call through the telemetry layer: scope a `full`-level
    //    sink over one query and print the frozen snapshot (metrics +
    //    span tree). `RTNN_TELEMETRY=off|basic|full` gates the global sink
    //    the same way; recording never changes results.
    use rtnn::telemetry::{SignatureProfiler, Telemetry, TelemetryLevel};
    let sink = Telemetry::new(TelemetryLevel::Full);
    sink.enable_profiler(SignatureProfiler::new(0.2));
    let observed = Telemetry::scoped(&sink, || {
        index.query(&queries, &knn_plan).expect("observed knn")
    });
    assert_eq!(
        observed.neighbors, knn.neighbors,
        "telemetry never changes results"
    );
    let snapshot = sink.snapshot();
    println!("telemetry snapshot of that call:");
    for (name, value) in &snapshot.metrics.counters {
        println!("  counter   {name} = {value}");
    }
    for (name, hist) in &snapshot.metrics.histograms {
        println!(
            "  histogram {name}: n={} p50={:.3} p99={:.3}",
            hist.count, hist.p50, hist.p99
        );
    }
    for span in &snapshot.spans {
        println!(
            "  span      {} [{:.3} ms]{}",
            span.name,
            span.duration_ms(),
            if span.parent.is_some() {
                " (nested)"
            } else {
                ""
            }
        );
    }

    // 9. The continuous profiler folded that same call into per-signature
    //    stage statistics — (plan kind, density bucket, backend) keyed,
    //    the feed an auto-tuner or regression monitor reads. Setting
    //    `RTNN_PROFILE=on` arms the same profiler on the global sink.
    let profile = sink
        .profile_snapshot()
        .expect("the profiler was enabled above");
    println!("continuous profile ({} signature(s)):", profile.len());
    for sig in &profile.signatures {
        println!(
            "  {}: {} execution(s), {} queries, total p50 {:.3} ms",
            sig.signature.label(),
            sig.executions,
            sig.queries,
            sig.total.p50_ms
        );
        for stage in &sig.stages {
            println!(
                "    {:<9} mean {:>8.3} ms  p99 {:>8.3} ms",
                stage.stage, stage.mean_ms, stage.p99_ms
            );
        }
    }
    assert!(
        profile
            .lookup("knn", points.len(), backend.name())
            .is_some(),
        "the observed knn call must be profiled under its signature"
    );
    // 10. Adaptive stage tuning: `EngineConfig::auto()` lets the index pick
    //     the `StageOverrides` rung per (plan kind, density bucket, backend)
    //     signature — cost model first, then measured arm scores. Tuning
    //     changes which stages run, never the answer.
    let mut auto = Index::build(&backend, &points[..], EngineConfig::auto());
    for round in 0..6 {
        let plan = if round % 2 == 0 {
            QueryPlan::knn(2.5, 8)
        } else {
            QueryPlan::range(2.5, 32)
        };
        let tuned = auto.query(&queries, &plan).expect("auto-tuned search");
        let d = auto.last_decision().expect("auto mode always decides");
        println!(
            "auto round {round}: {:?} via {:?}, simulated {:.2} ms",
            d.level,
            d.source,
            tuned.total_time_ms()
        );
        if round % 2 == 0 {
            assert_eq!(
                tuned.neighbors, knn.neighbors,
                "tuning never changes answers"
            );
        }
    }
    println!("tuner report (chosen overrides per signature):");
    for sig in auto.tuner().expect("auto mode carries a tuner").report() {
        println!(
            "  {}: {} decision(s), {}/4 arms measured, steady choice {:?}",
            sig.label(),
            sig.decisions,
            sig.measured_arms,
            sig.choice
        );
    }
    println!("all results verified against the brute-force oracle ✓");
}
