//! SPH density estimation — the scientific-computing workload behind the
//! cuNSearch baseline (SPlisHSPlasH uses fixed-radius neighbor search every
//! timestep to evaluate smoothing kernels over particle neighborhoods).
//!
//! This is a genuine multi-frame simulation on the streaming subsystem: a
//! dam-break block of particles settles under gravity over many timesteps,
//! and a persistent [`rtnn_dynamic::DynamicIndex`] serves every step's
//! neighborhood search. Particles only *move* between steps, so most frames
//! refit the BVH in place and refresh the megacell grid incrementally; the
//! cost-model policy rebuilds only when the drifted topology would slow
//! traversal by more than a rebuild costs.
//!
//! Run with:
//! ```text
//! cargo run --release --example sph_fluid
//! ```

use rtnn::verify::check_result;
use rtnn::{RtnnConfig, SearchParams};
use rtnn_dynamic::{DynamicIndex, StructureAction};
use rtnn_gpusim::Device;
use rtnn_math::Vec3;

/// The poly6 smoothing kernel used by standard SPH formulations.
fn poly6(r2: f32, h: f32) -> f32 {
    let h2 = h * h;
    if r2 >= h2 {
        return 0.0;
    }
    let coeff = 315.0 / (64.0 * std::f32::consts::PI * h.powi(9));
    coeff * (h2 - r2).powi(3)
}

fn main() {
    // A dam-break style block of particles on a jittered lattice.
    let n_per_axis = 24usize; // ~14k particles
    let spacing = 0.1f32;
    let h = 2.2 * spacing; // smoothing length == search radius
    let mut particles: Vec<Vec3> = Vec::new();
    for x in 0..n_per_axis {
        for y in 0..n_per_axis {
            for z in 0..n_per_axis {
                let jitter = 0.01 * ((x * 7 + y * 13 + z * 29) % 10) as f32 / 10.0;
                particles.push(Vec3::new(
                    x as f32 * spacing + jitter,
                    y as f32 * spacing - jitter,
                    z as f32 * spacing + jitter,
                ));
            }
        }
    }
    println!("SPH block: {} particles, h = {h:.3}", particles.len());

    let device = Device::rtx_2080();
    let params = SearchParams::range(h, 64);
    let config = RtnnConfig::new(params);
    let rest_density = 1000.0f32;
    let particle_mass = rest_density * spacing.powi(3);
    let stiffness = 3.0f32;

    // The persistent index: built once, maintained across every timestep on
    // the default (gpusim) execution backend — swap in `OptixBackend` or
    // the brute-force oracle via `DynamicIndex::with_backend`.
    let mut index = DynamicIndex::with_points(&device, config, &particles);
    println!("execution backend: {}", index.backend().name());

    let steps = 8;
    for step in 0..steps {
        // 1. Neighbor search through the streaming index.
        let frame = index.search(&particles).expect("neighborhood search");

        // 2. Density and pressure from the smoothing kernel.
        let densities: Vec<f32> = frame
            .results
            .neighbors
            .iter()
            .enumerate()
            .map(|(i, neigh)| {
                let mut rho = particle_mass * poly6(0.0, h); // self contribution
                for &j in neigh {
                    let r2 = particles[i].distance_squared(particles[j as usize]);
                    rho += particle_mass * poly6(r2, h);
                }
                rho
            })
            .collect();
        let avg_density = densities.iter().sum::<f32>() / densities.len() as f32;
        let avg_pressure = densities
            .iter()
            .map(|&rho| stiffness * (rho - rest_density).max(0.0))
            .sum::<f32>()
            / densities.len() as f32;
        let avg_neighbors = frame.results.total_neighbors() as f64 / particles.len() as f64;
        let action = match frame.action {
            StructureAction::Rebuilt => "rebuild",
            StructureAction::Refit => "refit",
            StructureAction::Reused => "reuse",
        };
        println!(
            "step {step}: avg {avg_neighbors:.1} neighbors, density {avg_density:.0} kg/m³, pressure {avg_pressure:.1} Pa, \
             {action} (quality {:.3}, structure {:.3} ms), search {:.2} ms (sim)",
            frame.quality_ratio,
            frame.structure_ms,
            frame.results.total_time_ms(),
        );

        // 3. Advect: the block settles under gravity — denser-than-rest
        //    regions push their particles slightly outward while everything
        //    compresses toward the ground plane.
        for (i, p) in particles.iter_mut().enumerate() {
            let over = ((densities[i] - rest_density) / rest_density).clamp(0.0, 1.0);
            p.z *= 0.99;
            p.x += 0.002 * over * if i % 2 == 0 { 1.0 } else { -1.0 };
            index.move_point(i as u32, *p);
        }
        // Interior particles of a lattice at this spacing have 30+ neighbors
        // within 2.2 spacings; densities should land near the rest density.
        assert!(avg_density > 0.5 * rest_density && avg_density < 2.0 * rest_density);
    }

    // Oracle spot-check of the final frame: the streaming index must agree
    // with an exhaustive scan.
    let last = index.search(&particles).expect("final search");
    for qi in (0..particles.len()).step_by(173) {
        check_result(
            &particles,
            particles[qi],
            &params,
            &last.results.neighbors[qi],
        )
        .unwrap_or_else(|e| panic!("query {qi} disagrees with the oracle: {e}"));
    }

    let m = index.frame_metrics();
    assert!(
        m.rebuilds < m.frames,
        "a settling fluid must not rebuild every frame"
    );
    println!(
        "{} frames: {} rebuilds, {} refits; amortized {:.2} ms/frame (structure {:.3} ms/frame, peak {:.2} ms)",
        m.frames,
        m.rebuilds,
        m.refits,
        m.amortized_frame_ms(),
        m.amortized_structure_ms(),
        m.peak_frame_ms,
    );
    println!("SPH example finished ✓");
}
