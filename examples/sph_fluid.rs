//! SPH density estimation — the scientific-computing workload behind the
//! cuNSearch baseline (SPlisHSPlasH uses fixed-radius neighbor search every
//! timestep to evaluate smoothing kernels over particle neighborhoods).
//!
//! This example runs a few pseudo-timesteps of density + pressure
//! evaluation over a block of fluid particles, re-searching neighborhoods
//! each step, and reports the simulated GPU time spent in the search.
//!
//! Run with:
//! ```text
//! cargo run --release --example sph_fluid
//! ```

use rtnn::{Rtnn, RtnnConfig, SearchParams};
use rtnn_gpusim::Device;
use rtnn_math::Vec3;

/// The poly6 smoothing kernel used by standard SPH formulations.
fn poly6(r2: f32, h: f32) -> f32 {
    let h2 = h * h;
    if r2 >= h2 {
        return 0.0;
    }
    let coeff = 315.0 / (64.0 * std::f32::consts::PI * h.powi(9));
    coeff * (h2 - r2).powi(3)
}

fn main() {
    // A dam-break style block of particles on a jittered lattice.
    let n_per_axis = 30usize; // 27k particles
    let spacing = 0.1f32;
    let h = 2.2 * spacing; // smoothing length == search radius
    let mut particles: Vec<Vec3> = Vec::new();
    for x in 0..n_per_axis {
        for y in 0..n_per_axis {
            for z in 0..n_per_axis {
                let jitter = 0.01 * ((x * 7 + y * 13 + z * 29) % 10) as f32 / 10.0;
                particles.push(Vec3::new(
                    x as f32 * spacing + jitter,
                    y as f32 * spacing - jitter,
                    z as f32 * spacing + jitter,
                ));
            }
        }
    }
    println!("SPH block: {} particles, h = {h:.3}", particles.len());

    let device = Device::rtx_2080();
    let params = SearchParams::range(h, 64);
    let rest_density = 1000.0f32;
    let particle_mass = rest_density * spacing.powi(3);
    let stiffness = 3.0f32;

    let mut total_search_ms = 0.0;
    let steps = 3;
    for step in 0..steps {
        // 1. Neighbor search (the part RTNN accelerates).
        let engine = Rtnn::new(&device, RtnnConfig::new(params));
        let result = engine
            .search(&particles, &particles)
            .expect("neighborhood search");
        total_search_ms += result.total_time_ms();

        // 2. Density and pressure from the smoothing kernel.
        let densities: Vec<f32> = result
            .neighbors
            .iter()
            .enumerate()
            .map(|(i, neigh)| {
                let mut rho = particle_mass * poly6(0.0, h); // self contribution
                for &j in neigh {
                    let r2 = particles[i].distance_squared(particles[j as usize]);
                    rho += particle_mass * poly6(r2, h);
                }
                rho
            })
            .collect();
        let avg_density = densities.iter().sum::<f32>() / densities.len() as f32;
        let avg_pressure = densities
            .iter()
            .map(|&rho| stiffness * (rho - rest_density).max(0.0))
            .sum::<f32>()
            / densities.len() as f32;
        let avg_neighbors = result.total_neighbors() as f64 / particles.len() as f64;
        println!(
            "step {step}: avg {avg_neighbors:.1} neighbors, density {avg_density:.0} kg/m³, pressure {avg_pressure:.1} Pa, search {:.2} ms (sim)",
            result.total_time_ms()
        );

        // 3. A token advection step so each search sees slightly different
        //    positions (compression along z, as if the block were settling).
        for p in particles.iter_mut() {
            p.z *= 0.995;
        }
        // Interior particles of a lattice at this spacing have 30+ neighbors
        // within 2.2 spacings; densities should land near the rest density.
        assert!(avg_density > 0.5 * rest_density && avg_density < 2.0 * rest_density);
    }
    println!("total simulated neighbor-search time over {steps} steps: {total_search_ms:.2} ms");
    println!("SPH example finished ✓");
}
