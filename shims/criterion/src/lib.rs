//! Offline shim for the subset of the `criterion` API this workspace uses.
//!
//! `cargo bench` still runs every registered benchmark and prints a
//! mean/min/max wall-clock summary; there is no statistical analysis, HTML
//! report or comparison against saved baselines. The API mirrors criterion
//! 0.5 closely enough that swapping the real crate back in requires no
//! source changes.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement strategies (only wall time is provided).
pub mod measurement {
    /// Wall-clock measurement, the criterion default.
    pub struct WallTime;
}

/// An opaque identifier for a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combine a function name and a parameter display into an id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion accepted by `bench_function` — criterion takes either a string
/// or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The rendered benchmark id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_secs(1),
            _criterion: self,
            _measurement: std::marker::PhantomData,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a, M> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
    _measurement: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// How long to warm up before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Target total sampling time.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = match (self.name.as_str(), id.into_id()) {
            ("", id) => id,
            (group, id) => format!("{group}/{id}"),
        };
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&label);
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (purely cosmetic in the shim).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` does the timing.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`, calling it repeatedly: first untimed during warm-up,
    /// then `sample_size` timed samples (bounded by the measurement time).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_up_end = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_up_end {
            black_box(routine());
        }
        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if measure_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<60} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        println!(
            "{label:<60} [{} {} {}]  ({} samples)",
            fmt_duration(*min),
            fmt_duration(mean),
            fmt_duration(*max),
            self.samples.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// An identity function that opaquely prevents the optimiser from deleting
/// the computation of its argument.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a benchmark group: a function that runs each target against a
/// shared [`Criterion`] instance.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(50));
        let mut calls = 0u32;
        group.bench_function(BenchmarkId::new("count", 1), |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        assert!(calls >= 3);
    }
}
