//! Offline shim for the subset of `crossbeam` this workspace uses:
//! `crossbeam::thread::scope`, implemented on top of `std::thread::scope`
//! (stable since Rust 1.63, which postdates crossbeam's scoped threads).

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A handle for spawning scoped threads, mirroring
    /// `crossbeam_utils::thread::Scope`: the spawn closure receives the scope
    /// again so nested spawns are possible.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish; `Err` carries the panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread scoped to `'env` borrows. As in crossbeam, the
        /// closure receives the scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Create a scope for spawning threads that may borrow from the caller's
    /// stack. Returns `Err` with the first panic payload if any spawned
    /// thread panicked (crossbeam semantics), `Ok` with the closure's result
    /// otherwise.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        // std::thread::scope re-raises child panics when the scope exits;
        // catch them to reproduce crossbeam's Result-based reporting.
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn child_panic_is_reported_as_err() {
        let result = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn nested_spawn_via_scope_argument() {
        let hits = AtomicUsize::new(0);
        super::thread::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| hits.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }
}
