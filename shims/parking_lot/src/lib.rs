//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s panic-free (non-`Result`)
//! locking API. Poisoned locks (a thread panicked while holding the lock)
//! ignore the poison, matching `parking_lot` semantics.

use std::sync::TryLockError;

/// A mutual-exclusion lock with `parking_lot`'s `lock() -> Guard` API.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-access guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-access guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock and return the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(7u32);
        assert_eq!(*l.read(), 7);
        *l.write() += 1;
        assert_eq!(l.into_inner(), 8);
    }
}
