//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! Differences from the real crate: cases are drawn from a ChaCha8 stream
//! seeded deterministically from the test name (so failures reproduce
//! exactly), and there is **no shrinking** — a failing case reports its
//! case number and message but not a minimised input. The strategy
//! combinators (`prop_map`, tuples, ranges, `collection::vec`, `any`) and
//! the `proptest!` / `prop_assert*` macros match the real API.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::marker::PhantomData;
use std::ops::Range;

/// The RNG handed to strategies while generating a test case.
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// Construct a deterministic rng, e.g. to replay a failing case's value
    /// stream outside the harness.
    pub fn deterministic(seed: u64) -> Self {
        TestRng(ChaCha8Rng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(f32, f64, u32, u64, usize, i32);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Strategy for "any value of `T`", returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

/// The full-domain strategy for `T` (implemented for the primitives the
/// workspace tests use).
pub fn any<T>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl Strategy for AnyStrategy<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.gen::<bool>()
    }
}

macro_rules! impl_any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_any_uint!(u8, u16, u32, u64, usize);

impl Strategy for AnyStrategy<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        rng.gen::<f32>()
    }
}

/// `Just` — a strategy that always yields a clone of its value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Rng, Strategy, TestRng};
    use std::ops::Range;

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate a `Vec` whose length is drawn from `size` and whose elements
    /// are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Namespace mirror so `prop::collection::vec(...)` works after
/// `use proptest::prelude::*`.
pub mod prop {
    pub use crate::collection;
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
    /// Accepted for compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; the shim never rejects cases.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a test case failed.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure with a message.
    Fail(String),
}

impl TestCaseError {
    /// Create a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
        }
    }
}

/// Drive `body` for `config.cases` deterministic cases. Used by the
/// [`proptest!`] macro; the per-test seed is derived from the test name so
/// every test sees an independent, reproducible stream.
pub fn run_cases(
    config: ProptestConfig,
    test_name: &str,
    mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    // FNV-1a over the test name gives a stable per-test seed.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for byte in test_name.bytes() {
        seed ^= u64::from(byte);
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    for case in 0..config.cases {
        let mut rng = TestRng(ChaCha8Rng::seed_from_u64(seed ^ (u64::from(case) << 32)));
        if let Err(e) = body(&mut rng) {
            panic!(
                "proptest `{test_name}` failed at case {case}/{}: {e}",
                config.cases
            );
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Define property tests: each function's arguments are drawn from the
/// strategies after `in`, and the body may use `prop_assert*` or return
/// `Err(TestCaseError)` early.
#[macro_export]
macro_rules! proptest {
    (
        @cfg ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_cases(config, stringify!($name), |rng| {
                    $(let $arg = $crate::Strategy::sample(&($strategy), rng);)+
                    let result: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    result
                });
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest! { @cfg ($config) $($rest)* }
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn tuple_and_map_strategies_compose(
            xyz in (0.0f32..1.0, 0.0f32..1.0, 0.0f32..1.0).prop_map(|(x, y, z)| x + y + z),
            n in 1usize..8,
            flag in any::<bool>(),
            items in prop::collection::vec(0u32..100, 2..5),
        ) {
            prop_assert!((0.0..3.0).contains(&xyz), "sum out of range: {xyz}");
            prop_assert!((1..8).contains(&n));
            prop_assert_ne!(flag, !flag);
            prop_assert!((2..5).contains(&items.len()));
            prop_assert_eq!(items.len(), items.iter().filter(|&&x| x < 100).count());
            prop_assert_ne!(items.len(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_number() {
        crate::run_cases(
            ProptestConfig {
                cases: 4,
                ..Default::default()
            },
            "always_fails",
            |_| Err(TestCaseError::fail("nope")),
        );
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let mut first = Vec::new();
        let mut second = Vec::new();
        for out in [&mut first, &mut second] {
            crate::run_cases(
                ProptestConfig {
                    cases: 8,
                    ..Default::default()
                },
                "det",
                |rng| {
                    out.push(Strategy::sample(&(0u32..1000), rng));
                    Ok(())
                },
            );
        }
        assert_eq!(first, second);
    }
}
