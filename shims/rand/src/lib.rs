//! Offline shim for the subset of `rand 0.8` this workspace uses:
//! [`RngCore`], [`SeedableRng`] (with the SplitMix64-based `seed_from_u64`),
//! and the [`Rng`] extension trait with `gen` / `gen_range` / `fill`.
//!
//! The value streams are **not** bit-compatible with the real `rand` crate;
//! they are deterministic given a seed, which is the property the dataset
//! generators and tests rely on.

use std::ops::{Range, RangeInclusive};

/// Core trait implemented by random number generator backends.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` by expanding it with SplitMix64, as `rand_core`
    /// does. (Same expansion algorithm, so shim seeds are stable, but the
    /// resulting streams still differ from the real crates.)
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types sampleable uniformly over their "natural" domain by `Rng::gen`
/// (`[0, 1)` for floats, the full range for integers).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 bits of mantissa → uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_float_range {
    ($t:ty, $std:ty) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    };
}
impl_float_range!(f32, f32);
impl_float_range!(f64, f64);

macro_rules! impl_int_range {
    ($t:ty) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Multiply-shift bounded sampling; the tiny modulo bias of a
                // 64-bit draw is irrelevant for dataset synthesis.
                let draw = rng.next_u64() as u128;
                self.start + ((draw * span) >> 64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                let draw = rng.next_u64() as u128;
                lo + ((draw * span) >> 64) as $t
            }
        }
    };
}
impl_int_range!(u32);
impl_int_range!(u64);
impl_int_range!(usize);

impl SampleRange<i32> for Range<i32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> i32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let span = (self.end as i64 - self.start as i64) as u128;
        let draw = rng.next_u64() as u128;
        (self.start as i64 + ((draw * span) >> 64) as i64) as i32
    }
}

/// Extension methods available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from its standard distribution (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Sample a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// `rand::rngs` — only [`rngs::StdRng`] is provided, aliasing a small xorshift
/// generator good enough for shuffling and jitter.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast xorshift* generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xorshift64*
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 8];

        fn from_seed(seed: Self::Seed) -> Self {
            let state = u64::from_le_bytes(seed) | 1;
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn float_samples_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&y));
            let z = rng.gen_range(-1.5f32..=1.5);
            assert!((-1.5..=1.5).contains(&z));
        }
    }

    #[test]
    fn int_samples_cover_range_uniformly_enough() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[rng.gen_range(0..4u32) as usize] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn seed_determines_stream() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(43);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
