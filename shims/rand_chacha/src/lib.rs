//! Offline shim for `rand_chacha::ChaCha8Rng`.
//!
//! Unlike the other shims this one implements the actual ChaCha8 stream
//! cipher (RFC 8439 quarter-round, 8 double-rounds), because the workspace
//! depends on the generator being a platform-independent, seedable,
//! high-quality stream: every dataset in `rtnn-data` must be bit-for-bit
//! reproducible across machines, runs and thread counts. Word order of the
//! output stream differs from the real `rand_chacha`, so seeds are portable
//! but streams are not interchangeable with the real crate.

use rand::{RngCore, SeedableRng};

/// A ChaCha stream cipher based RNG with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, 256-bit key (the seed), 64-bit block
    /// counter, 64-bit nonce (zero).
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means "exhausted".
    index: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // One double round: 4 column rounds then 4 diagonal rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.block.iter_mut().zip(working.iter().zip(&self.state)) {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12–13.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }

    /// The seed this generator was constructed from.
    pub fn get_seed(&self) -> [u8; 32] {
        let mut seed = [0u8; 32];
        for (i, chunk) in seed.chunks_mut(4).enumerate() {
            chunk.copy_from_slice(&self.state[4 + i].to_le_bytes());
        }
        seed
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        // Counter (12–13) and nonce (14–15) start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn matches_chacha8_reference_first_block() {
        // ChaCha8 keystream block 0 for the all-zero key and nonce. The
        // reference keystream starts with bytes 3e00ef2f 895f40d6 7f5bb8e8
        // 1f09a5a1 (estream test-vector family); as little-endian u32 words:
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        assert_eq!(rng.next_u32(), 0x2fef_003e);
        assert_eq!(rng.next_u32(), 0xd640_5f89);
        assert_eq!(rng.next_u32(), 0xe8b8_5b7f);
        assert_eq!(rng.next_u32(), 0xa1a5_091f);
    }

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = ChaCha8Rng::seed_from_u64(1234);
        let mut b = ChaCha8Rng::seed_from_u64(1234);
        let mut c = ChaCha8Rng::seed_from_u64(1235);
        let xs: Vec<u32> = (0..100).map(|_| a.next_u32()).collect();
        let ys: Vec<u32> = (0..100).map(|_| b.next_u32()).collect();
        let zs: Vec<u32> = (0..100).map(|_| c.next_u32()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn crosses_block_boundaries() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        // 16 words per block; draw 100 floats to cross several boundaries.
        let mut last = -1.0f32;
        let mut all_equal = true;
        for _ in 0..100 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            all_equal &= x == last;
            last = x;
        }
        assert!(!all_equal);
    }

    #[test]
    fn get_seed_round_trips() {
        let seed = [9u8; 32];
        let rng = ChaCha8Rng::from_seed(seed);
        assert_eq!(rng.get_seed(), seed);
    }
}
