//! Offline shim for the subset of `serde` this workspace uses: the
//! [`Serialize`] / [`Deserialize`] derives plus enough machinery for
//! `serde_json::to_string_pretty`.
//!
//! Instead of serde's visitor architecture, [`Serialize`] converts the value
//! into an owned JSON-like [`Value`] tree that `serde_json` renders. That is
//! all the workspace needs (persisting experiment reports); swapping the real
//! serde back in requires no source changes because the derive names and
//! module paths match.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like document tree produced by [`Serialize::to_value`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// A value that can be converted into a [`Value`] tree.
///
/// Derivable with `#[derive(Serialize)]` for structs with named fields and
/// for enums with unit, struct or tuple variants (externally tagged, like
/// real serde).
pub trait Serialize {
    /// Convert `self` into a document tree.
    fn to_value(&self) -> Value;
}

/// Marker trait so `#[derive(Deserialize)]` and `use serde::Deserialize`
/// keep compiling. The workspace never parses serialized data back, so no
/// methods are required; deriving it simply records the intent.
pub trait Deserialize {}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {}
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {}
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {}
    )*};
}
impl_serialize_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_trees() {
        assert_eq!(3u32.to_value(), Value::U64(3));
        assert_eq!((-3i32).to_value(), Value::I64(-3));
        assert_eq!(1.5f32.to_value(), Value::F64(1.5));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("hi".to_string().to_value(), Value::Str("hi".into()));
        assert_eq!(Option::<u32>::None.to_value(), Value::Null);
        assert_eq!(
            vec![1u8, 2].to_value(),
            Value::Array(vec![Value::U64(1), Value::U64(2)])
        );
    }
}
