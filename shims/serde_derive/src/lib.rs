//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline serde shim. The container has no `syn`/`quote`, so the item is
//! parsed directly from the `proc_macro` token stream. Supported shapes —
//! everything this workspace derives on:
//!
//! * structs with named fields;
//! * enums with unit, struct and tuple variants (externally tagged).
//!
//! Generics are not supported and produce a `compile_error!`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed skeleton of a derive input item.
enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

enum VariantKind {
    Unit,
    Struct(Vec<String>),
    Tuple(usize),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skip attributes (`#` followed by a bracket group, covering doc comments)
/// and visibility (`pub`, optionally with a restriction group).
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1; // the attribute's bracket group
                if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) and friends
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Advance past one field/variant: consume tokens until a comma at zero
/// angle-bracket depth (token streams do not group `<...>`).
fn skip_to_comma(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle_depth = 0i32;
    while let Some(t) = tokens.get(i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return i + 1,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

/// Parse the `name: Type,` list of a named-field struct body (or struct
/// variant body) into the field names.
fn parse_named_fields(body: &proc_macro::Group) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            if i >= tokens.len() {
                break;
            }
            return Err(format!(
                "expected field name, found {:?}",
                tokens[i].to_string()
            ));
        };
        fields.push(name.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected ':' after field name, found {other:?}")),
        }
        i = skip_to_comma(&tokens, i);
    }
    Ok(fields)
}

/// Count the fields of a tuple-variant body `(TypeA, TypeB, ...)`.
fn count_tuple_fields(body: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        count += 1;
        i = skip_to_comma(&tokens, i);
    }
    count
}

fn parse_variants(body: &proc_macro::Group) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            if i >= tokens.len() {
                break;
            }
            return Err(format!(
                "expected variant name, found {:?}",
                tokens[i].to_string()
            ));
        };
        let name = name.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g)?;
                i += 1;
                VariantKind::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g);
                i += 1;
                VariantKind::Tuple(n)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        i = skip_to_comma(&tokens, i);
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected 'struct' or 'enum', found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "cannot derive for generic type `{name}` (shim limitation)"
            ));
        }
    }
    let Some(TokenTree::Group(body)) = tokens.get(i) else {
        return Err(format!(
            "cannot derive for unit or tuple struct `{name}` (shim limitation)"
        ));
    };
    match keyword.as_str() {
        "struct" if body.delimiter() == Delimiter::Brace => Ok(Item::Struct {
            name,
            fields: parse_named_fields(body)?,
        }),
        "struct" => Err(format!(
            "cannot derive for tuple struct `{name}` (shim limitation)"
        )),
        "enum" => Ok(Item::Enum {
            name,
            variants: parse_variants(body)?,
        }),
        other => Err(format!("expected 'struct' or 'enum', found '{other}'")),
    }
}

/// Derive `serde::Serialize` (shim): convert the value into a `serde::Value`
/// tree with serde's externally-tagged enum representation.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let out = match item {
        Item::Struct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),"
                        ),
                        VariantKind::Struct(fields) => {
                            let bindings = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "({f:?}.to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {bindings} }} => ::serde::Value::Object(vec![(\
                                     {vname:?}.to_string(), ::serde::Value::Object(vec![{}])\
                                 )]),",
                                entries.join(", ")
                            )
                        }
                        VariantKind::Tuple(n) => {
                            let bindings: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let values: Vec<String> = bindings
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(vec![(\
                                     {vname:?}.to_string(), ::serde::Value::Array(vec![{}])\
                                 )]),",
                                bindings.join(", "),
                                values.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    out.parse().unwrap()
}

/// Derive `serde::Deserialize` (shim): the trait is a marker, so the impl is
/// empty — enough for `#[derive(Deserialize)]` and trait bounds to compile.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let name = match &item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .unwrap()
}
