//! Offline shim for the subset of `serde_json` this workspace uses:
//! [`to_string`] and [`to_string_pretty`] over the serde shim's
//! [`serde::Value`] tree.

use serde::{Serialize, Value};
use std::fmt::Write;

/// Serialization error. The shim's rendering is infallible, but the real
/// crate returns `Result`, so callers' `?`/`unwrap` keep compiling.
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("serde_json shim error")
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize `value` as a two-space-indented JSON string.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn render(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => write!(out, "{n}").unwrap(),
        Value::U64(n) => write!(out, "{n}").unwrap(),
        Value::F64(x) => {
            if x.is_finite() {
                // Match serde_json: integral floats keep a trailing `.0`.
                if *x == x.trunc() && x.abs() < 1e15 {
                    write!(out, "{x:.1}").unwrap();
                } else {
                    write!(out, "{x}").unwrap();
                }
            } else {
                // serde_json maps non-finite floats to null.
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32).unwrap(),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Value;

    struct Wrapper(Value);
    impl Serialize for Wrapper {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn compact_rendering() {
        let v = Wrapper(Value::Object(vec![
            ("a".into(), Value::U64(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".into(), Value::Str("x\"y".into())),
        ]));
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"a":1,"b":[true,null],"c":"x\"y"}"#
        );
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = Wrapper(Value::Object(vec![(
            "k".into(),
            Value::Array(vec![Value::I64(-2)]),
        )]));
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"k\": [\n    -2\n  ]\n}"
        );
    }

    #[test]
    fn float_formatting() {
        assert_eq!(to_string(&Wrapper(Value::F64(2.0))).unwrap(), "2.0");
        assert_eq!(to_string(&Wrapper(Value::F64(2.5))).unwrap(), "2.5");
        assert_eq!(to_string(&Wrapper(Value::F64(f64::NAN))).unwrap(), "null");
    }
}
