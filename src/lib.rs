//! Umbrella crate for the RTNN reproduction workspace.
//!
//! This crate exists so the repository root can host the runnable
//! [`examples/`](https://github.com/horizon-research/rtnn) and the
//! cross-crate integration tests in `tests/`. It re-exports the public
//! surface of every member crate so examples can write `use rtnn_repro::...`
//! or depend on the individual crates directly.

pub use rtnn;
pub use rtnn_baselines as baselines;
pub use rtnn_bvh as bvh;
pub use rtnn_data as data;
pub use rtnn_dynamic as dynamic;
pub use rtnn_gpusim as gpusim;
pub use rtnn_math as math;
pub use rtnn_optix as optix;
pub use rtnn_parallel as parallel;
pub use rtnn_serve as serve;
pub use rtnn_telemetry as telemetry;
