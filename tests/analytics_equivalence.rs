//! Analytics equivalence suite: DBSCAN labels and reverse-k-NN member sets
//! must be **bit-equal** to the O(n²) oracles in `rtnn-baselines` no matter
//! which execution backend answers the neighborhood queries (gpusim, the
//! OptiX shim, or brute force), how the executor is sharded (plain `Index`
//! vs `ShardedIndex` at several shard counts), or whether a dynamic scene
//! is clustered from scratch or maintained incrementally across frames.
//!
//! Every reduction in `rtnn-analytics` is order-invariant, so these are
//! exact `assert_eq!`s — no tolerance, no set-normalisation.

use proptest::prelude::*;
use rtnn::{Backend, EngineConfig, GpusimBackend, Index, OptixBackend};
use rtnn_analytics::stream::FrameChange;
use rtnn_analytics::{Dbscan, ReverseKnn, StreamingDbscan};
use rtnn_baselines::{dbscan_oracle, rknn_oracle, BruteForceBackend};
use rtnn_data::uniform::{self, UniformParams};
use rtnn_dynamic::DynamicIndex;
use rtnn_gpusim::Device;
use rtnn_math::Vec3;
use rtnn_serve::ShardedIndex;

fn seeded_cloud(n: usize, seed: u64) -> Vec<Vec3> {
    uniform::generate(&UniformParams {
        num_points: n,
        seed,
        ..Default::default()
    })
    .points
}

/// DBSCAN parameter sweep: sparse through dense neighborhoods.
const DBSCAN_GRID: [(f32, usize); 3] = [(0.6, 3), (0.9, 5), (1.4, 8)];
/// Reverse-k-NN parameter sweep.
const RKNN_GRID: [(usize, f32); 3] = [(1, 0.8), (3, 1.2), (6, 2.0)];

#[test]
fn dbscan_labels_match_the_oracle_on_every_backend() {
    let device = Device::rtx_2080();
    let backends: Vec<(&str, Box<dyn Backend>)> = vec![
        ("gpusim", Box::new(GpusimBackend::new(&device))),
        ("optix", Box::new(OptixBackend::new(&device))),
        ("brute-force", Box::new(BruteForceBackend::new(&device))),
    ];
    let points = seeded_cloud(420, 0xD85C);
    for (eps, min_pts) in DBSCAN_GRID {
        let want = dbscan_oracle(&points, eps, min_pts);
        for (name, backend) in &backends {
            let mut index =
                Index::build(backend.as_ref(), points.as_slice(), EngineConfig::default());
            let got = Dbscan::new(eps, min_pts)
                .run(&points, &mut index)
                .expect("dbscan fits the device");
            assert_eq!(
                got.labels, want,
                "backend {name}, eps {eps}, min_pts {min_pts}"
            );
        }
    }
}

#[test]
fn rknn_members_match_the_oracle_on_every_backend() {
    let device = Device::rtx_2080();
    let backends: Vec<(&str, Box<dyn Backend>)> = vec![
        ("gpusim", Box::new(GpusimBackend::new(&device))),
        ("optix", Box::new(OptixBackend::new(&device))),
        ("brute-force", Box::new(BruteForceBackend::new(&device))),
    ];
    let points = seeded_cloud(380, 0x4B1D);
    let mut queries: Vec<Vec3> = points.iter().step_by(11).copied().collect();
    queries.push(Vec3::new(-60.0, -60.0, -60.0)); // far outside: empty set
    for (k, r_max) in RKNN_GRID {
        let want = rknn_oracle(&points, &queries, k, r_max);
        for (name, backend) in &backends {
            let mut index =
                Index::build(backend.as_ref(), points.as_slice(), EngineConfig::default());
            let got = ReverseKnn::new(k, r_max)
                .run(&points, &queries, &mut index)
                .expect("rknn fits the device");
            assert_eq!(got.members, want, "backend {name}, k {k}, r_max {r_max}");
        }
    }
}

/// Shard counts 0 (no sharding: the plain `Index` executor), 1, 2 and 5:
/// per-shard partial hit lists are merged into canonical single-index
/// lists before any analytics reduction, so the full results — not just
/// the labels — are bit-equal.
#[test]
fn sharded_executors_are_bit_equal_to_the_plain_index() {
    let device = Device::rtx_2080();
    let backend = GpusimBackend::new(&device);
    let points = seeded_cloud(500, 0x5A4D);
    let queries: Vec<Vec3> = points.iter().step_by(17).copied().collect();
    let (eps, min_pts) = (0.9, 4);
    let (k, r_max) = (3, 1.1);

    let mut plain = Index::build(&backend, points.as_slice(), EngineConfig::default());
    let dbscan_plain = Dbscan::new(eps, min_pts)
        .run(&points, &mut plain)
        .expect("dbscan fits the device");
    let rknn_plain = ReverseKnn::new(k, r_max)
        .run(&points, &queries, &mut plain)
        .expect("rknn fits the device");
    assert_eq!(dbscan_plain.labels, dbscan_oracle(&points, eps, min_pts));

    for shards in [1usize, 2, 5] {
        let mut sharded = ShardedIndex::build(&backend, &points, EngineConfig::default(), shards);
        let dbscan_got = Dbscan::new(eps, min_pts)
            .run(&points, &mut sharded)
            .expect("sharded dbscan fits the device");
        assert_eq!(dbscan_got, dbscan_plain, "dbscan, {shards} shards");
        let rknn_got = ReverseKnn::new(k, r_max)
            .run(&points, &queries, &mut sharded)
            .expect("sharded rknn fits the device");
        assert_eq!(rknn_got, rknn_plain, "rknn, {shards} shards");
    }
}

/// Drive a dynamic scene through moves, inserts and removes; every frame,
/// the incrementally maintained streaming labels and a from-scratch
/// clustering of the frame's live points must both match the oracle.
#[test]
fn dynamic_frames_match_the_oracle_every_frame() {
    let device = Device::rtx_2080();
    let config = rtnn::RtnnConfig::new(rtnn::SearchParams::range(0.9, 64));
    let mut points = seeded_cloud(260, 0xF00D);
    let (eps, min_pts) = (0.9, 4);
    let mut index = DynamicIndex::with_points(&device, config, &points);
    let mut stream = StreamingDbscan::new(Dbscan::new(eps, min_pts));
    let mut dead: Vec<u32> = Vec::new();

    for frame in 0..5u32 {
        let mut change = FrameChange::default();
        if frame > 0 {
            // Deterministic churn: a stripe of survivors moves, one point
            // retires, two join.
            let stride = 3 + frame as usize;
            let live: Vec<u32> = (0..points.len() as u32)
                .filter(|h| !dead.contains(h))
                .collect();
            for &h in live.iter().step_by(stride) {
                let p = points[h as usize] + Vec3::new(0.11 * frame as f32, -0.07, 0.05);
                points[h as usize] = p;
                index.move_point(h, p);
                change.moved.push(h);
            }
            let retire = live[live.len() / 2];
            index.remove(retire);
            dead.push(retire);
            change.removed.push(retire);
            for i in 0..2 {
                let p = points[(7 * frame as usize + i) % points.len()] + Vec3::new(0.3, 0.3, 0.3);
                let handle = index.insert(p);
                assert_eq!(handle as usize, points.len());
                points.push(p);
                change.inserted.push(handle);
            }
        }

        let streamed = stream
            .relabel(&mut index, &change)
            .expect("relabel fits the device");

        let mut frame_view = index.as_index().expect("frame view");
        let live: Vec<Vec3> = frame_view.index.points().to_vec();
        let handles: Vec<u32> = frame_view.handles.to_vec();
        let want = dbscan_oracle(&live, eps, min_pts);

        // From-scratch clustering of the frame's compact view.
        let fresh = Dbscan::new(eps, min_pts)
            .run(&live, &mut frame_view.index)
            .expect("dbscan fits the device");
        assert_eq!(fresh.labels, want, "frame {frame}, from scratch");

        // Streamed handle-space labels, translated to compact space.
        let mut compact_of = vec![u32::MAX; streamed.clustering.labels.len()];
        for (i, &h) in handles.iter().enumerate() {
            compact_of[h as usize] = i as u32;
        }
        let translated = streamed.clustering.labels_as(&compact_of);
        let streamed_compact: Vec<Option<u32>> =
            handles.iter().map(|&h| translated[h as usize]).collect();
        assert_eq!(streamed_compact, want, "frame {frame}, streamed");
    }
}

/// One drift frame in the property test: per-point jitter selectors plus
/// insert positions and removal picks.
#[derive(Debug, Clone)]
struct DriftFrame {
    move_mask: Vec<bool>,
    jitter: (f32, f32, f32),
    inserts: Vec<(f32, f32, f32)>,
    removes: Vec<u16>,
}

fn frame_strategy(n: usize) -> impl Strategy<Value = DriftFrame> {
    (
        proptest::collection::vec(any::<bool>(), n..n + 1),
        (-0.4f32..0.4, -0.4f32..0.4, -0.4f32..0.4),
        proptest::collection::vec((-3.0f32..3.0, -3.0f32..3.0, -3.0f32..3.0), 0..3),
        proptest::collection::vec(any::<u16>(), 0..3),
    )
        .prop_map(|(move_mask, jitter, inserts, removes)| DriftFrame {
            move_mask,
            jitter,
            inserts,
            removes,
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Incremental relabel across arbitrary drift sequences stays
    /// bit-equal to a from-scratch recluster of every frame.
    #[test]
    fn streaming_relabel_matches_recluster_under_random_drift(
        seed in 0u64..1_000,
        frames in proptest::collection::vec(frame_strategy(60), 1..4),
    ) {
        let device = Device::rtx_2080();
        let config = || rtnn::RtnnConfig::new(rtnn::SearchParams::range(0.8, 64));
        let mut points = seeded_cloud(60, seed);
        let params = Dbscan::new(0.8, 3);
        let mut inc_index = DynamicIndex::with_points(&device, config(), &points);
        let mut full_index = DynamicIndex::with_points(&device, config(), &points);
        let mut inc = StreamingDbscan::new(params);
        let mut full = StreamingDbscan::new(params);
        let mut dead: Vec<u32> = Vec::new();

        for frame in &frames {
            let mut change = FrameChange::default();
            let live: Vec<u32> =
                (0..points.len() as u32).filter(|h| !dead.contains(h)).collect();
            // At least one point always survives (removals stop at one),
            // so `live` is never empty.
            prop_assert!(!live.is_empty());
            for (slot, &moved) in frame.move_mask.iter().enumerate() {
                if !moved || slot >= live.len() {
                    continue;
                }
                let h = live[slot];
                let (dx, dy, dz) = frame.jitter;
                let p = points[h as usize] + Vec3::new(dx, dy, dz);
                points[h as usize] = p;
                inc_index.move_point(h, p);
                full_index.move_point(h, p);
                change.moved.push(h);
            }
            for &(x, y, z) in &frame.inserts {
                let p = Vec3::new(x, y, z);
                let handle = inc_index.insert(p);
                prop_assert_eq!(handle, full_index.insert(p));
                prop_assert_eq!(handle as usize, points.len());
                points.push(p);
                change.inserted.push(handle);
            }
            for &pick in &frame.removes {
                let live_now: Vec<u32> =
                    (0..points.len() as u32).filter(|h| !dead.contains(h)).collect();
                if live_now.len() <= 1 {
                    break;
                }
                let h = live_now[pick as usize % live_now.len()];
                inc_index.remove(h);
                full_index.remove(h);
                dead.push(h);
                change.removed.push(h);
            }

            let a = inc.relabel(&mut inc_index, &change).expect("relabel");
            let b = full.recluster(&mut full_index).expect("recluster");
            prop_assert_eq!(&a.clustering, &b.clustering);
            prop_assert_eq!(a.alive, b.alive);
        }
    }
}
