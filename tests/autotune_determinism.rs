//! Adaptive-tuning determinism: the `AutoTuner` must be a pure function
//! of its seed and its observation history, and tuning must change *which*
//! pipeline stages run — never the answer.
//!
//! Concretely, across all three backends (gpusim, the OptiX shim, and the
//! brute-force oracle):
//!
//! * the same seed over the same query sequence replays the identical
//!   decision sequence, with bit-equal results;
//! * every auto-tuned round's neighbors are bit-equal to a static
//!   `StageOverrides::for_level` run at the decided level;
//! * a tuner seeded from a *replayed* `ProfileSnapshot` (the continuous
//!   profiler's output) decides identically on every replay;
//! * the tuned serving path (`execute_tick_tuned` over a `ShardedIndex`)
//!   stays bit-equal to direct unsharded queries and records its decision
//!   on every tick.

use rtnn::telemetry::{SignatureProfiler, Telemetry, TelemetryLevel};
use rtnn::{
    AutoTuner, Backend, DecisionSource, EngineConfig, GpusimBackend, Index, OptLevel, OptixBackend,
    QueryPlan, StageOverrides, TunerDecision, Tuning,
};
use rtnn_baselines::BruteForceBackend;
use rtnn_data::uniform::{self, UniformParams};
use rtnn_gpusim::Device;
use rtnn_math::{Aabb, Vec3};
use rtnn_serve::{execute_tick, execute_tick_tuned, Request, ShardedIndex};

/// A seeded random cloud: full-mantissa coordinates, no exact distance
/// ties, so bit-equality comparisons are meaningful at every opt level.
/// The tight bounds give ~2 points per unit³, so the fixed radii below
/// find non-trivial neighbor sets.
fn seeded_cloud(n: usize, seed: u64) -> Vec<Vec3> {
    uniform::generate(&UniformParams {
        num_points: n,
        seed,
        bounds: Aabb::new(Vec3::ZERO, Vec3::splat(10.0)),
    })
    .points
}

fn queries_for(points: &[Vec3]) -> Vec<Vec3> {
    points.iter().step_by(11).copied().collect()
}

/// Range results are *set*-equal across opt levels (traversal order
/// differs per rung); sort per query before comparing results produced
/// at potentially different decided levels. KNN stays strictly bit-equal.
fn sorted(neighbors: &[Vec<u32>]) -> Vec<Vec<u32>> {
    neighbors
        .iter()
        .map(|n| {
            let mut n = n.clone();
            n.sort_unstable();
            n
        })
        .collect()
}

/// Alternating KNN / non-truncating range plans: two signatures per run.
fn plan_for(round: usize) -> QueryPlan {
    if round.is_multiple_of(2) {
        QueryPlan::knn(1.5, 8)
    } else {
        QueryPlan::range(1.2, 100_000)
    }
}

/// One auto-tuned session: `rounds` queries on a fresh auto index,
/// returning each round's decision and neighbors.
fn auto_session(
    backend: &dyn Backend,
    points: &[Vec3],
    queries: &[Vec3],
    seed: u64,
    rounds: usize,
) -> Vec<(TunerDecision, Vec<Vec<u32>>)> {
    let config = EngineConfig::default().with_tuning(Tuning::Auto { seed });
    let mut index = Index::build(backend, points, config);
    (0..rounds)
        .map(|round| {
            let results = index
                .query(queries, &plan_for(round))
                .expect("auto session fits the device");
            (
                index.last_decision().expect("auto mode always decides"),
                results.neighbors,
            )
        })
        .collect()
}

#[test]
fn same_seed_replays_identical_decisions_and_bit_equal_results_per_backend() {
    let device = Device::rtx_2080();
    let points = seeded_cloud(2_000, 0xA0_70);
    let queries = queries_for(&points);
    let backends: [(&str, Box<dyn Backend>); 3] = [
        ("gpusim", Box::new(GpusimBackend::new(&device))),
        ("optix-shim", Box::new(OptixBackend::new(&device))),
        ("brute-force", Box::new(BruteForceBackend::new(&device))),
    ];
    for (name, backend) in &backends {
        let first = auto_session(backend.as_ref(), &points, &queries, 99, 12);
        let second = auto_session(backend.as_ref(), &points, &queries, 99, 12);
        assert_eq!(first, second, "{name}: same seed must replay exactly");
        // The session got past the cold start and into measured
        // exploitation on each of its two signatures.
        assert_eq!(first[0].0.source, DecisionSource::CostModel);
        assert!(
            first
                .iter()
                .any(|(d, _)| d.source == DecisionSource::Measured),
            "{name}: no measured decision in {} rounds",
            first.len()
        );

        // Every round bit-equal to the *static* execution of the decided
        // level — tuning changes stages, never answers.
        let mut statics = Index::build(backend.as_ref(), &points, EngineConfig::default());
        for (round, (decision, neighbors)) in first.iter().enumerate() {
            let reference = statics
                .query_with(
                    &queries,
                    &plan_for(round),
                    StageOverrides::for_level(decision.level),
                )
                .expect("static reference fits the device");
            assert_eq!(
                neighbors, &reference.neighbors,
                "{name} round {round}: auto at {:?} diverged from its static twin",
                decision.level
            );
        }
    }
}

#[test]
fn different_seeds_may_explore_differently_but_never_change_answers() {
    let device = Device::rtx_2080();
    let backend = GpusimBackend::new(&device);
    let points = seeded_cloud(1_500, 0xBEE);
    let queries = queries_for(&points);
    let a = auto_session(&backend, &points, &queries, 1, 10);
    let b = auto_session(&backend, &points, &queries, 2, 10);
    for (round, ((_, na), (_, nb))) in a.iter().zip(&b).enumerate() {
        // The two sessions may decide different levels at the same round,
        // so range rounds compare as sets.
        if plan_for(round).kind_label() == "range" {
            assert_eq!(
                sorted(na),
                sorted(nb),
                "round {round}: results must be seed-independent"
            );
        } else {
            assert_eq!(na, nb, "round {round}: results must be seed-independent");
        }
    }
}

#[test]
fn replayed_profiles_seed_identical_decisions() {
    let device = Device::rtx_2080();
    let backend = GpusimBackend::new(&device);
    let points = seeded_cloud(1_500, 0x5EED);
    let queries = queries_for(&points);

    // Record a profile under the static default (Full) engine.
    let tel = Telemetry::new(TelemetryLevel::Basic);
    tel.enable_profiler(SignatureProfiler::default());
    Telemetry::scoped(&tel, || {
        let mut index = Index::build(&backend, &points, EngineConfig::default());
        for round in 0..6 {
            index
                .query(&queries, &plan_for(round))
                .expect("profiling run fits the device");
        }
    });
    let snapshot = tel.profile_snapshot().expect("profiler recorded");

    // Two tuners replaying the same snapshot take the same decisions.
    let drive = || -> Vec<TunerDecision> {
        let mut tuner = AutoTuner::new(7);
        tuner.absorb_profile(&snapshot, OptLevel::Full);
        (0..12)
            .map(|round| {
                let kind = if round % 2 == 0 { "knn" } else { "range" };
                let d = tuner.decide(kind, points.len(), "gpusim", queries.len());
                // Feed a fixed observation so later decisions see history.
                tuner.observe(
                    kind,
                    points.len(),
                    "gpusim",
                    d.level,
                    &[
                        ("Schedule", 0.1),
                        ("Partition", 0.1),
                        ("Launch", 2.0),
                        ("Gather", 0.0),
                    ],
                    0.0,
                );
                d
            })
            .collect()
    };
    let first = drive();
    assert_eq!(first, drive(), "replayed profiles must decide identically");
    // The replay took effect: with the Full arm pre-seeded from the
    // profile, the first decision skips the cost-model cold start and
    // bootstraps the remaining arms instead.
    assert_ne!(first[0].source, DecisionSource::CostModel);

    // The integrated path — an auto index created under the recorded
    // telemetry — also starts from the absorbed profile, and stays exact.
    Telemetry::scoped(&tel, || {
        let mut auto = Index::build(
            &backend,
            &points,
            EngineConfig::default().with_tuning(Tuning::auto()),
        );
        let results = auto
            .query(&queries, &QueryPlan::knn(1.5, 8))
            .expect("auto run fits the device");
        let d = auto.last_decision().expect("decided");
        assert_ne!(d.source, DecisionSource::CostModel, "profile was absorbed");
        let mut statics = Index::build(&backend, &points, EngineConfig::default());
        let reference = statics
            .query_with(
                &queries,
                &QueryPlan::knn(1.5, 8),
                StageOverrides::for_level(d.level),
            )
            .unwrap();
        assert_eq!(results.neighbors, reference.neighbors);
    });
}

#[test]
fn sharded_tuned_ticks_stay_bit_equal_and_record_decisions() {
    let device = Device::rtx_2080();
    let backend = GpusimBackend::new(&device);
    let points = seeded_cloud(2_000, 0x54A2D);
    // Mixed request population (non-truncating range caps, as the shard
    // merge contract requires).
    let requests: Vec<Request> = (0..8)
        .map(|i| {
            let queries: Vec<Vec3> = points
                .iter()
                .skip(i * 37)
                .step_by(101 + i * 7)
                .take(10)
                .copied()
                .collect();
            let plan = if i % 2 == 0 {
                QueryPlan::knn(1.4, 6)
            } else {
                QueryPlan::range(1.1, 100_000)
            };
            Request::new(queries, plan)
        })
        .collect();

    // Direct, unsharded, untuned reference per request.
    let mut direct = Index::build(&backend, &points, EngineConfig::default());
    let expected: Vec<Vec<Vec<u32>>> = requests
        .iter()
        .map(|r| direct.query(&r.queries, &r.plan).unwrap().neighbors)
        .collect();

    // Drive tuned ticks over a sharded executor: 2 requests per tick so
    // every tick fuses (one decision per fused batch), several passes so
    // the tuner reaches measured exploitation.
    let session = || -> Vec<Option<TunerDecision>> {
        let mut sharded = ShardedIndex::build(&backend, &points, EngineConfig::default(), 4);
        let mut tuner = AutoTuner::new(11);
        let mut decisions = Vec::new();
        for _pass in 0..3 {
            for (pair, exp) in requests.chunks(2).zip(expected.chunks(2)) {
                let refs: Vec<&Request> = pair.iter().collect();
                let (outcomes, tick) = execute_tick_tuned(&mut sharded, &refs, Some(&mut tuner));
                assert!(tick.tuned.is_some(), "tunable executor: decision recorded");
                for ((outcome, exp), request) in outcomes.iter().zip(exp).zip(pair) {
                    let got = outcome.as_ref().expect("tick served the request");
                    // The tick may run at a different decided level than the
                    // direct (Full) reference: range compares as sets.
                    if request.plan.kind_label() == "range" {
                        assert_eq!(
                            sorted(got),
                            sorted(exp),
                            "tuned sharded tick diverged from the direct query"
                        );
                    } else {
                        assert_eq!(
                            got, exp,
                            "tuned sharded tick diverged from the direct query"
                        );
                    }
                }
                decisions.push(tick.tuned);
            }
        }
        assert!(
            tuner.decisions() >= 12,
            "one decision per tick: got {}",
            tuner.decisions()
        );
        decisions
    };
    let first = session();
    assert_eq!(first, session(), "tuned serving replays deterministically");
    assert!(
        first
            .iter()
            .any(|d| d.map(|d| d.source) == Some(DecisionSource::Measured)),
        "the serving tuner reached measured exploitation"
    );

    // Untuned ticks on the same sharded executor remain decision-free.
    let mut sharded = ShardedIndex::build(&backend, &points, EngineConfig::default(), 4);
    let refs: Vec<&Request> = requests.iter().take(2).collect();
    let (_, tick) = execute_tick(&mut sharded, &refs);
    assert!(tick.tuned.is_none());
}
