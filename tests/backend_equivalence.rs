//! Cross-backend equivalence suite: for every plan kind × optimisation
//! level, the ray-tracing backends (`GpusimBackend`, `OptixBackend`) must
//! agree with the exhaustive `BruteForceBackend` oracle on seeded clouds —
//! bit-equal for KNN (whose distance-sorted output erases traversal-order
//! differences) and set-equal for range search (whose within-radius *order*
//! is traversal-defined, so an uncapped comparison is order-normalised).
//!
//! Also proves the `Backend` trait stays object-safe: every backend in the
//! suite is driven through a `Box<dyn Backend>`.

use rtnn::{
    Backend, EngineConfig, GpusimBackend, Index, OptLevel, OptixBackend, PlanSlice, QueryPlan,
    StageOverrides,
};
use rtnn_baselines::BruteForceBackend;
use rtnn_data::uniform::{self, UniformParams};
use rtnn_gpusim::Device;
use rtnn_math::Vec3;

/// A seeded random cloud (no grid degeneracies, so float distance ties —
/// the one thing that could legitimately differ between candidate visit
/// orders — do not occur).
fn seeded_cloud(n: usize, seed: u64) -> Vec<Vec3> {
    uniform::generate(&UniformParams {
        num_points: n,
        seed,
        ..Default::default()
    })
    .points
}

fn queries_for(points: &[Vec3]) -> Vec<Vec3> {
    let mut queries: Vec<Vec3> = points.iter().step_by(9).copied().collect();
    // A few queries outside the cloud exercise the out-of-grid paths.
    queries.push(Vec3::new(-100.0, -100.0, -100.0));
    queries.push(Vec3::new(500.0, 0.0, 12.0));
    queries
}

fn sorted(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v
}

/// Run one plan on one backend through a trait object (object safety is
/// part of what this suite proves).
fn run_plan(
    backend: &dyn Backend,
    points: &[Vec3],
    queries: &[Vec3],
    opt: OptLevel,
    plan: &QueryPlan,
) -> Vec<Vec<u32>> {
    let mut index = Index::build(backend, points, EngineConfig::default().with_opt(opt));
    index
        .query(queries, plan)
        .expect("equivalence workload fits the device")
        .neighbors
}

#[test]
fn all_backends_agree_for_every_plan_kind_and_opt_level() {
    let device = Device::rtx_2080();
    let points = seeded_cloud(3000, 0xBEEF);
    let queries = queries_for(&points);
    let n = queries.len() as u32;

    let knn = QueryPlan::knn(6.0, 8);
    // Cap far above any in-radius count, so the range sets are complete.
    let range = QueryPlan::range(5.0, 100_000);
    let batch = QueryPlan::Batch(vec![
        PlanSlice::new(QueryPlan::knn(4.0, 5), (0..n / 2).collect()),
        PlanSlice::new(QueryPlan::range(7.0, 100_000), (n / 2..n).collect()),
    ]);

    let rt_backends: Vec<(&str, Box<dyn Backend + '_>)> = vec![
        ("gpusim", Box::new(GpusimBackend::new(&device))),
        ("optix-shim", Box::new(OptixBackend::new(&device))),
    ];
    let oracle: Box<dyn Backend + '_> = Box::new(BruteForceBackend::new(&device));

    for opt in OptLevel::all() {
        // KNN: bit-equal (same sets, same distance-sorted order).
        let oracle_knn = run_plan(oracle.as_ref(), &points, &queries, opt, &knn);
        for (name, backend) in &rt_backends {
            let got = run_plan(backend.as_ref(), &points, &queries, opt, &knn);
            assert_eq!(
                got, oracle_knn,
                "{name} vs oracle, {opt:?}: KNN results must be bit-equal"
            );
        }

        // Range: set-equal against the oracle (order is traversal-defined);
        // the two RT backends must agree bit-for-bit with each other.
        let oracle_range = run_plan(oracle.as_ref(), &points, &queries, opt, &range);
        let rt_range: Vec<Vec<Vec<u32>>> = rt_backends
            .iter()
            .map(|(_, b)| run_plan(b.as_ref(), &points, &queries, opt, &range))
            .collect();
        assert_eq!(
            rt_range[0], rt_range[1],
            "{opt:?}: the two RT backends must agree bit-for-bit on range search"
        );
        for (qi, oracle_ids) in oracle_range.iter().enumerate() {
            assert_eq!(
                sorted(rt_range[0][qi].clone()),
                sorted(oracle_ids.clone()),
                "{opt:?} query {qi}: range sets must match the oracle"
            );
        }

        // Heterogeneous batch: per-slice, same contracts as above.
        let oracle_batch = run_plan(oracle.as_ref(), &points, &queries, opt, &batch);
        for (name, backend) in &rt_backends {
            let got = run_plan(backend.as_ref(), &points, &queries, opt, &batch);
            for qi in 0..(n / 2) as usize {
                assert_eq!(
                    got[qi], oracle_batch[qi],
                    "{name} vs oracle, {opt:?}: batch KNN slice, query {qi}"
                );
            }
            for qi in (n / 2) as usize..n as usize {
                assert_eq!(
                    sorted(got[qi].clone()),
                    sorted(oracle_batch[qi].clone()),
                    "{name} vs oracle, {opt:?}: batch range slice, query {qi}"
                );
            }
        }
    }
}

#[test]
fn boxed_backends_are_interchangeable_at_runtime() {
    // The constructor takes `&dyn Backend`: the same call site serves any
    // implementation picked at runtime.
    let device = Device::rtx_2080();
    let points = seeded_cloud(800, 0x0B57AC1E);
    let queries: Vec<Vec3> = points.iter().step_by(13).copied().collect();
    let backends: Vec<Box<dyn Backend + '_>> = vec![
        Box::new(GpusimBackend::new(&device)),
        Box::new(OptixBackend::new(&device)),
        Box::new(BruteForceBackend::new(&device)),
    ];
    let mut all = Vec::new();
    for backend in &backends {
        assert!(!backend.name().is_empty());
        let mut index = Index::build(backend.as_ref(), &points[..], EngineConfig::default());
        all.push(
            index
                .query(&queries, &QueryPlan::knn(5.0, 4))
                .unwrap()
                .neighbors,
        );
    }
    assert_eq!(all[0], all[1]);
    assert_eq!(all[0], all[2]);
}

#[test]
fn stage_overrides_preserve_backend_equivalence() {
    // Disabling a pipeline stage per call must not change *what* any
    // backend computes — the staged execution only moves work around. Every
    // backend (driven through a `Box<dyn Backend>`, including the oracle,
    // which executes the same pipeline with exhaustive launches) must agree
    // bit-for-bit on KNN under every single-stage toggle, and the toggles
    // must match the untoggled results.
    let device = Device::rtx_2080();
    let points = seeded_cloud(1500, 0x0DDBA11);
    let queries = queries_for(&points);
    let plan = QueryPlan::knn(6.0, 8);
    let backends: Vec<(&str, Box<dyn Backend + '_>)> = vec![
        ("gpusim", Box::new(GpusimBackend::new(&device))),
        ("optix-shim", Box::new(OptixBackend::new(&device))),
        ("brute-force", Box::new(BruteForceBackend::new(&device))),
    ];
    let toggles = [
        ("none", StageOverrides::none()),
        ("no-reorder", StageOverrides::without_reordering()),
        ("no-partition", StageOverrides::without_partitioning()),
    ];

    let mut reference: Option<Vec<Vec<u32>>> = None;
    for (backend_name, backend) in &backends {
        for (toggle_name, overrides) in toggles {
            let mut index = Index::build(backend.as_ref(), &points[..], EngineConfig::default());
            let got = index
                .query_with(&queries, &plan, overrides)
                .expect("override workload fits the device")
                .neighbors;
            match &reference {
                None => reference = Some(got),
                Some(expected) => assert_eq!(
                    &got, expected,
                    "{backend_name}/{toggle_name}: stage toggles must not change KNN results"
                ),
            }
        }
    }
}

#[test]
fn oracle_matches_the_reference_brute_force_scan() {
    // The oracle backend and the verification module's scan must agree —
    // they are independent implementations of the same ground truth.
    let device = Device::rtx_2080();
    let points = seeded_cloud(1200, 0x0C0FFEE);
    let queries: Vec<Vec3> = points.iter().step_by(31).copied().collect();
    let oracle: Box<dyn Backend + '_> = Box::new(BruteForceBackend::new(&device));
    let got = run_plan(
        oracle.as_ref(),
        &points,
        &queries,
        OptLevel::Full,
        &QueryPlan::knn(8.0, 6),
    );
    for (qi, q) in queries.iter().enumerate() {
        assert_eq!(got[qi], rtnn::verify::brute_force_knn(&points, *q, 8.0, 6));
    }
}
