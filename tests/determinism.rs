//! Nondeterminism hazards: every dataset generator must produce bit-identical
//! clouds across repeated runs and across worker-thread counts, and the
//! engine's results and *simulated* timings must be independent of the host
//! thread count.
//!
//! These tests mutate the process-global `rtnn_parallel` thread count, so
//! they live in their own integration-test binary (own process) and
//! serialise the mutation behind a lock.

#![allow(deprecated)] // the legacy `Rtnn` shim is one of the engines under test

use rtnn::{Rtnn, RtnnConfig, SearchParams};
use rtnn_data::{Dataset, DatasetName};
use rtnn_gpusim::Device;
use rtnn_math::Vec3;
use std::sync::Mutex;

static THREAD_COUNT_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` with the worker-thread count pinned to `n`, restoring the default
/// afterwards.
fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    let _guard = THREAD_COUNT_LOCK.lock().unwrap();
    rtnn_parallel::set_num_threads(n);
    let out = f();
    rtnn_parallel::set_num_threads(0);
    out
}

fn small_cloud(name: DatasetName) -> Vec<Vec3> {
    Dataset::scaled(name, name.paper_points() / 3000)
        .generate()
        .points
}

#[test]
fn every_dataset_family_is_reproducible_across_runs() {
    for name in DatasetName::all() {
        let a = small_cloud(name);
        let b = small_cloud(name);
        assert_eq!(
            a.len(),
            b.len(),
            "{}: cloud size changed between runs",
            name.label()
        );
        assert!(
            a.iter().zip(&b).all(|(p, q)| p == q),
            "{}: clouds differ between two generations with the same seed",
            name.label()
        );
    }
}

#[test]
fn dataset_generation_is_independent_of_thread_count() {
    for name in [
        DatasetName::Kitti1M,
        DatasetName::NBody9M,
        DatasetName::Bunny360K,
    ] {
        let serial = with_threads(1, || small_cloud(name));
        let parallel = with_threads(8, || small_cloud(name));
        assert!(
            serial.iter().zip(&parallel).all(|(p, q)| p == q) && serial.len() == parallel.len(),
            "{}: cloud depends on the worker-thread count",
            name.label()
        );
    }
}

#[test]
fn engine_results_and_simulated_times_are_independent_of_thread_count() {
    let device = Device::rtx_2080();
    let points = small_cloud(DatasetName::Kitti6M);
    let queries: Vec<Vec3> = points.iter().step_by(5).copied().collect();
    let params = SearchParams::knn(2.0, 8);
    let run = || {
        Rtnn::new(&device, RtnnConfig::new(params))
            .search(&points, &queries)
            .unwrap()
    };
    let serial = with_threads(1, run);
    let parallel = with_threads(8, run);
    assert_eq!(
        serial.neighbors, parallel.neighbors,
        "neighbor lists depend on thread count"
    );
    assert_eq!(
        serial.breakdown, parallel.breakdown,
        "simulated breakdown depends on thread count"
    );
    assert_eq!(
        serial.search_metrics, parallel.search_metrics,
        "simulated search metrics depend on thread count"
    );
}

#[test]
fn kitti_cloud_matches_golden_fingerprint() {
    // Bit-exact, order-sensitive fingerprint of one generated cloud: catches
    // accidental changes to the ChaCha8 stream, the seeding scheme, the
    // generator logic, or the emission *order* (a plain coordinate sum would
    // miss permutations, which silently change every downstream neighbor-id
    // ordering) — drift that same-process double-generation cannot see.
    let points = Dataset::scaled(DatasetName::Kitti1M, 10_000)
        .generate()
        .points;
    assert_eq!(points.len(), 1000);
    // FNV-1a over the points' coordinate bits, in emission order.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for p in &points {
        for bits in [p.x.to_bits(), p.y.to_bits(), p.z.to_bits()] {
            for byte in bits.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
    }
    assert_eq!(
        hash, GOLDEN_KITTI_FINGERPRINT,
        "KITTI-1M/10000 fingerprint drifted (got {hash:#018X}); if the \
         generator change is intentional, update GOLDEN_KITTI_FINGERPRINT"
    );
}

/// Order-sensitive FNV-1a hash of the `Kitti1M`-scaled-by-10000 cloud
/// (1000 points, seed 101). Update only for intentional generator changes.
const GOLDEN_KITTI_FINGERPRINT: u64 = 0x0FC2_A35B_CC0A_AA36;
