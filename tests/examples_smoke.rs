//! Smoke tests for the runnable examples: `cargo test` builds every example
//! target, and these tests execute each binary end-to-end and check its
//! success marker, so the examples cannot silently rot (compile- or
//! runtime-wise).
//!
//! Each example prints a terminal `✓` line after verifying its own results
//! against an oracle; a non-zero exit or a missing marker fails the test.

use std::path::PathBuf;
use std::process::Command;

/// Locate a compiled example binary for the active profile. Test binaries
/// live in `target/<profile>/deps/`, examples in `target/<profile>/examples/`.
fn example_binary(name: &str) -> PathBuf {
    let mut dir = std::env::current_exe().expect("current_exe");
    dir.pop(); // the test binary itself
    if dir.ends_with("deps") {
        dir.pop();
    }
    let path = dir.join("examples").join(name);
    assert!(
        path.exists(),
        "example binary {path:?} not found — run via `cargo test`, which builds example targets"
    );
    path
}

fn run_example(name: &str) {
    let output = Command::new(example_binary(name))
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn example `{name}`: {e}"));
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "example `{name}` exited with {:?}\nstdout:\n{stdout}\nstderr:\n{stderr}",
        output.status
    );
    assert!(
        stdout.contains('✓'),
        "example `{name}` did not print its success marker\nstdout:\n{stdout}"
    );
}

#[test]
fn quickstart_runs_and_verifies() {
    run_example("quickstart");
}

#[test]
fn lidar_pipeline_runs_and_verifies() {
    run_example("lidar_pipeline");
}

#[test]
fn sph_fluid_runs_and_verifies() {
    run_example("sph_fluid");
}

#[test]
fn query_server_runs_and_verifies() {
    run_example("query_server");
}

#[test]
fn nbody_clustering_runs_and_verifies() {
    run_example("nbody_clustering");
}

#[test]
fn cluster_stream_runs_and_verifies() {
    run_example("cluster_stream");
}
