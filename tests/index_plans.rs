//! Acceptance tests for the Index/QueryPlan API redesign:
//!
//! * `Index::query` with per-call plans is **bit-equal** to the legacy
//!   `Rtnn::search` path for all plan kinds × optimisation levels;
//! * repeated plans on one index amortise every structure build away;
//! * plan validation happens at query time with typed errors naming the
//!   offending field;
//! * a heterogeneous batch answers several plans in one call and matches
//!   the corresponding single-plan results.

#![allow(deprecated)] // the legacy shim is one side of the equivalence

use rtnn::{
    EngineConfig, GpusimBackend, Index, OptLevel, PlanError, PlanSlice, QueryPlan, Rtnn,
    RtnnConfig, SearchError, SearchParams,
};
use rtnn_data::uniform::{self, UniformParams};
use rtnn_gpusim::Device;
use rtnn_math::Vec3;

fn seeded_cloud(n: usize, seed: u64) -> Vec<Vec3> {
    uniform::generate(&UniformParams {
        num_points: n,
        seed,
        ..Default::default()
    })
    .points
}

#[test]
fn index_is_bit_equal_to_legacy_engine_for_all_plans_and_opt_levels() {
    let device = Device::rtx_2080();
    let backend = GpusimBackend::new(&device);
    let points = seeded_cloud(2500, 0xA11CE);
    let mut queries: Vec<Vec3> = points.iter().step_by(7).copied().collect();
    queries.push(Vec3::new(-50.0, -50.0, -50.0)); // outside the cloud
    for params in [
        SearchParams::knn(5.0, 8),
        SearchParams::range(4.0, 64),
        SearchParams::range(2.0, 5), // cap-truncating: order must match too
    ] {
        for opt in OptLevel::all() {
            let config = RtnnConfig::new(params).with_opt(opt);
            let legacy = Rtnn::new(&device, config)
                .search(&points, &queries)
                .unwrap();
            let mut index = Index::build(&backend, &points[..], config.engine());
            let modern = index.query(&queries, &config.plan()).unwrap();
            assert_eq!(
                legacy.neighbors, modern.neighbors,
                "{params:?} {opt:?}: Index::query must be bit-equal to Rtnn::search"
            );
            assert_eq!(
                legacy.num_partitions, modern.num_partitions,
                "{params:?} {opt:?}"
            );
            assert_eq!(legacy.num_bundles, modern.num_bundles, "{params:?} {opt:?}");
            // First call on a fresh index pays exactly the legacy build
            // cost; a repeat pays none and returns identical results.
            assert_eq!(legacy.breakdown.bvh_ms, modern.breakdown.bvh_ms);
            let again = index.query(&queries, &config.plan()).unwrap();
            assert_eq!(again.neighbors, modern.neighbors);
            assert_eq!(
                again.breakdown.bvh_ms, 0.0,
                "{params:?} {opt:?}: warm index must not rebuild structures"
            );
        }
    }
}

#[test]
fn one_index_serves_heterogeneous_plans_cheaper_than_new_engines() {
    let device = Device::rtx_2080();
    let backend = GpusimBackend::new(&device);
    let points = seeded_cloud(4000, 0x5EED);
    let queries: Vec<Vec3> = points.iter().step_by(5).copied().collect();
    let plans = [
        QueryPlan::knn(4.0, 8),
        QueryPlan::knn(6.0, 16),
        QueryPlan::range(3.0, 32),
        QueryPlan::range(4.0, 64),
    ];

    let mut index = Index::build(&backend, &points[..], EngineConfig::default());
    let mut index_total = 0.0;
    for plan in &plans {
        index_total += index.query(&queries, plan).unwrap().total_time_ms();
    }

    let mut engines_total = 0.0;
    for plan in &plans {
        let params = plan.params().unwrap();
        engines_total += Rtnn::new(&device, RtnnConfig::new(params))
            .search(&points, &queries)
            .unwrap()
            .total_time_ms();
    }
    assert!(
        index_total < engines_total,
        "one index ({index_total:.3} ms) must beat per-plan engines ({engines_total:.3} ms)"
    );
}

#[test]
fn batch_results_match_single_plan_results_on_the_same_index() {
    let device = Device::rtx_2080();
    let backend = GpusimBackend::new(&device);
    let points = seeded_cloud(2000, 0xBA7C4);
    let queries: Vec<Vec3> = points.iter().step_by(4).copied().collect();
    let n = queries.len() as u32;
    let thirds = [
        (0..n / 3).collect::<Vec<u32>>(),
        (n / 3..2 * n / 3).collect(),
        (2 * n / 3..n).collect(),
    ];
    let plans = [
        QueryPlan::knn(3.0, 4),
        QueryPlan::knn(5.5, 12),
        QueryPlan::range(4.5, 100_000),
    ];
    let batch = QueryPlan::Batch(
        plans
            .iter()
            .cloned()
            .zip(thirds.iter().cloned())
            .map(|(plan, ids)| PlanSlice::new(plan, ids))
            .collect(),
    );

    let mut index = Index::build(&backend, &points[..], EngineConfig::default());
    let combined = index.query(&queries, &batch).unwrap();
    for (plan, ids) in plans.iter().zip(&thirds) {
        let single = index.query(&queries, plan).unwrap();
        for &qid in ids {
            let (mut a, mut b) = (
                combined.neighbors[qid as usize].clone(),
                single.neighbors[qid as usize].clone(),
            );
            if matches!(plan, QueryPlan::Range { .. }) {
                a.sort_unstable();
                b.sort_unstable();
            }
            assert_eq!(a, b, "slice {plan:?}, query {qid}");
        }
    }
    // The batch shares one scheduling pass over all covered queries.
    assert_eq!(combined.fs_metrics.active_rays, n as u64);
}

#[test]
fn plan_validation_is_typed_and_names_the_field() {
    let device = Device::rtx_2080();
    let backend = GpusimBackend::new(&device);
    let points = seeded_cloud(100, 3);
    let mut index = Index::build(&backend, &points[..], EngineConfig::default());
    let queries = vec![Vec3::ZERO];

    let cases: Vec<(QueryPlan, PlanError)> = vec![
        (
            QueryPlan::knn(0.0, 4),
            PlanError::InvalidRadius {
                field: "Knn.r",
                value: 0.0,
            },
        ),
        (
            QueryPlan::knn(1.0, 0),
            PlanError::ZeroNeighborCount { field: "Knn.k" },
        ),
        (
            QueryPlan::range(-3.0, 8),
            PlanError::InvalidRadius {
                field: "Range.r",
                value: -3.0,
            },
        ),
        (QueryPlan::Batch(Vec::new()), PlanError::EmptyBatch),
        (
            QueryPlan::Batch(vec![PlanSlice::new(QueryPlan::knn(1.0, 2), vec![7])]),
            PlanError::QueryIdOutOfRange {
                slice: 0,
                query_id: 7,
                num_queries: 1,
            },
        ),
    ];
    for (plan, expected) in cases {
        let err = index.query(&queries, &plan).unwrap_err();
        assert_eq!(err, SearchError::InvalidPlan(expected.clone()));
        // Every error message names the offending field or structure.
        let msg = err.to_string();
        assert!(
            msg.contains("invalid configuration"),
            "missing error prefix: {msg}"
        );
    }

    // The legacy shim reports the same typed errors.
    let legacy = Rtnn::new(&device, RtnnConfig::new(SearchParams::range(1.0, 0)));
    assert_eq!(
        legacy.search(&points, &queries).unwrap_err(),
        SearchError::InvalidPlan(PlanError::ZeroNeighborCount {
            field: "SearchParams.k"
        })
    );
}
