//! Acceptance tests for the Index/QueryPlan API redesign:
//!
//! * `Index::query` with per-call plans is **bit-equal** to the legacy
//!   `Rtnn::search` path for all plan kinds × optimisation levels;
//! * repeated plans on one index amortise every structure build away;
//! * plan validation happens at query time with typed errors naming the
//!   offending field;
//! * a heterogeneous batch answers several plans in one call and matches
//!   the corresponding single-plan results.

#![allow(deprecated)] // the legacy shim is one side of the equivalence

use rtnn::pipeline::{IdentitySchedule, MegacellPartition, SinglePartition};
use rtnn::{
    EngineConfig, GpusimBackend, Index, OptLevel, PlanError, PlanSlice, QueryPlan, Rtnn,
    RtnnConfig, SearchError, SearchParams, StageKind, StageOverrides,
};
use rtnn_data::uniform::{self, UniformParams};
use rtnn_gpusim::Device;
use rtnn_math::Vec3;

fn seeded_cloud(n: usize, seed: u64) -> Vec<Vec3> {
    uniform::generate(&UniformParams {
        num_points: n,
        seed,
        ..Default::default()
    })
    .points
}

#[test]
fn index_is_bit_equal_to_legacy_engine_for_all_plans_and_opt_levels() {
    let device = Device::rtx_2080();
    let backend = GpusimBackend::new(&device);
    let points = seeded_cloud(2500, 0xA11CE);
    let mut queries: Vec<Vec3> = points.iter().step_by(7).copied().collect();
    queries.push(Vec3::new(-50.0, -50.0, -50.0)); // outside the cloud
    for params in [
        SearchParams::knn(5.0, 8),
        SearchParams::range(4.0, 64),
        SearchParams::range(2.0, 5), // cap-truncating: order must match too
    ] {
        for opt in OptLevel::all() {
            let config = RtnnConfig::new(params).with_opt(opt);
            let legacy = Rtnn::new(&device, config)
                .search(&points, &queries)
                .unwrap();
            let mut index = Index::build(&backend, &points[..], config.engine());
            let modern = index.query(&queries, &config.plan()).unwrap();
            assert_eq!(
                legacy.neighbors, modern.neighbors,
                "{params:?} {opt:?}: Index::query must be bit-equal to Rtnn::search"
            );
            assert_eq!(
                legacy.num_partitions, modern.num_partitions,
                "{params:?} {opt:?}"
            );
            assert_eq!(legacy.num_bundles, modern.num_bundles, "{params:?} {opt:?}");
            // First call on a fresh index pays exactly the legacy build
            // cost; a repeat pays none and returns identical results.
            assert_eq!(legacy.breakdown.bvh_ms, modern.breakdown.bvh_ms);
            let again = index.query(&queries, &config.plan()).unwrap();
            assert_eq!(again.neighbors, modern.neighbors);
            assert_eq!(
                again.breakdown.bvh_ms, 0.0,
                "{params:?} {opt:?}: warm index must not rebuild structures"
            );
        }
    }
}

#[test]
fn one_index_serves_heterogeneous_plans_cheaper_than_new_engines() {
    let device = Device::rtx_2080();
    let backend = GpusimBackend::new(&device);
    let points = seeded_cloud(4000, 0x5EED);
    let queries: Vec<Vec3> = points.iter().step_by(5).copied().collect();
    let plans = [
        QueryPlan::knn(4.0, 8),
        QueryPlan::knn(6.0, 16),
        QueryPlan::range(3.0, 32),
        QueryPlan::range(4.0, 64),
    ];

    let mut index = Index::build(&backend, &points[..], EngineConfig::default());
    let mut index_total = 0.0;
    for plan in &plans {
        index_total += index.query(&queries, plan).unwrap().total_time_ms();
    }

    let mut engines_total = 0.0;
    for plan in &plans {
        let params = plan.params().unwrap();
        engines_total += Rtnn::new(&device, RtnnConfig::new(params))
            .search(&points, &queries)
            .unwrap()
            .total_time_ms();
    }
    assert!(
        index_total < engines_total,
        "one index ({index_total:.3} ms) must beat per-plan engines ({engines_total:.3} ms)"
    );
}

#[test]
fn batch_results_match_single_plan_results_on_the_same_index() {
    let device = Device::rtx_2080();
    let backend = GpusimBackend::new(&device);
    let points = seeded_cloud(2000, 0xBA7C4);
    let queries: Vec<Vec3> = points.iter().step_by(4).copied().collect();
    let n = queries.len() as u32;
    let thirds = [
        (0..n / 3).collect::<Vec<u32>>(),
        (n / 3..2 * n / 3).collect(),
        (2 * n / 3..n).collect(),
    ];
    let plans = [
        QueryPlan::knn(3.0, 4),
        QueryPlan::knn(5.5, 12),
        QueryPlan::range(4.5, 100_000),
    ];
    let batch = QueryPlan::Batch(
        plans
            .iter()
            .cloned()
            .zip(thirds.iter().cloned())
            .map(|(plan, ids)| PlanSlice::new(plan, ids))
            .collect(),
    );

    let mut index = Index::build(&backend, &points[..], EngineConfig::default());
    let combined = index.query(&queries, &batch).unwrap();
    for (plan, ids) in plans.iter().zip(&thirds) {
        let single = index.query(&queries, plan).unwrap();
        for &qid in ids {
            let (mut a, mut b) = (
                combined.neighbors[qid as usize].clone(),
                single.neighbors[qid as usize].clone(),
            );
            if matches!(plan, QueryPlan::Range { .. }) {
                a.sort_unstable();
                b.sort_unstable();
            }
            assert_eq!(a, b, "slice {plan:?}, query {qid}");
        }
    }
    // The batch shares one scheduling pass over all covered queries.
    assert_eq!(combined.fs_metrics.active_rays, n as u64);
}

/// The `StageOverrides` ladder must be bit-equal to the `OptLevel` ladder:
/// disabling a stage per call on a fully-optimised engine produces exactly
/// the results (and counters, and simulated breakdown) of the engine level
/// that never had the stage — the overrides subsume the `OptLevel`
/// plumbing.
#[test]
fn stage_overrides_are_bit_equal_to_the_opt_level_ladder() {
    let device = Device::rtx_2080();
    let backend = GpusimBackend::new(&device);
    let points = seeded_cloud(2500, 0x57A6E5);
    let queries: Vec<Vec3> = points.iter().step_by(6).copied().collect();

    let ladder: [(OptLevel, StageOverrides<'static>); 4] = [
        (
            OptLevel::NoOpt,
            StageOverrides {
                schedule: Some(&IdentitySchedule),
                partition: Some(&SinglePartition),
                ..StageOverrides::default()
            },
        ),
        (OptLevel::Sched, StageOverrides::without_partitioning()),
        (
            OptLevel::SchedPartition,
            StageOverrides {
                partition: Some(&MegacellPartition { bundle: false }),
                ..StageOverrides::default()
            },
        ),
        (OptLevel::Full, StageOverrides::none()),
    ];

    for plan in [QueryPlan::knn(5.0, 8), QueryPlan::range(4.0, 64)] {
        for (opt, overrides) in ladder {
            let mut levelled =
                Index::build(&backend, &points[..], EngineConfig::default().with_opt(opt));
            let expected = levelled.query(&queries, &plan).unwrap();

            let mut full = Index::build(&backend, &points[..], EngineConfig::default());
            let got = full.query_with(&queries, &plan, overrides).unwrap();

            assert_eq!(
                got.neighbors, expected.neighbors,
                "{plan:?} {opt:?}: override ladder must be bit-equal"
            );
            assert_eq!(
                got.num_partitions, expected.num_partitions,
                "{plan:?} {opt:?}"
            );
            assert_eq!(got.num_bundles, expected.num_bundles, "{plan:?} {opt:?}");
            assert_eq!(
                got.breakdown, expected.breakdown,
                "{plan:?} {opt:?}: simulated breakdown must match exactly"
            );
        }
    }

    // And no overrides at all is literally `query`.
    let plan = QueryPlan::knn(5.0, 8);
    let mut a = Index::build(&backend, &points[..], EngineConfig::default());
    let mut b = Index::build(&backend, &points[..], EngineConfig::default());
    let via_query = a.query(&queries, &plan).unwrap();
    let via_with = b
        .query_with(&queries, &plan, StageOverrides::none())
        .unwrap();
    assert_eq!(via_query.neighbors, via_with.neighbors);
    assert_eq!(via_query.breakdown, via_with.breakdown);
}

/// Satellite contract of the per-stage metering: the sum of the
/// `StageTiming` entries equals the simulated non-transfer total of the
/// existing breakdown — every millisecond lands in exactly one stage, and
/// the sort kernel (charged inside the shared batch schedule) is never
/// double-billed.
#[test]
fn stage_timings_sum_to_the_launch_metrics_totals() {
    let device = Device::rtx_2080();
    let backend = GpusimBackend::new(&device);
    let points = seeded_cloud(3000, 0x7141465);
    let queries: Vec<Vec3> = points.iter().step_by(5).copied().collect();
    let n = queries.len() as u32;
    let plans = [
        QueryPlan::knn(5.0, 8),
        QueryPlan::range(4.0, 64),
        QueryPlan::Batch(vec![
            PlanSlice::new(QueryPlan::knn(4.0, 6), (0..n / 2).collect()),
            PlanSlice::new(QueryPlan::range(5.5, 64), (n / 2..n).collect()),
        ]),
    ];
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * b.abs().max(1.0);

    for opt in OptLevel::all() {
        for plan in &plans {
            let mut index =
                Index::build(&backend, &points[..], EngineConfig::default().with_opt(opt));
            let results = index.query(&queries, plan).unwrap();
            let b = &results.breakdown;
            let trace = &results.trace;

            // Every simulated ms outside the Data slot is in exactly one
            // stage.
            assert!(
                close(trace.device_total_ms(), b.total_ms() - b.data_ms),
                "{opt:?} {plan:?}: stages account {} ms, breakdown has {} ms",
                trace.device_total_ms(),
                b.total_ms() - b.data_ms
            );
            // Schedule + Partition together are the Opt + FS components —
            // the sort kernel is billed once (to Schedule), the megacell
            // kernel once (to Partition).
            let sched = trace.stage(StageKind::Schedule).device_ms;
            let part = trace.stage(StageKind::Partition).device_ms;
            assert!(
                close(sched + part, b.opt_ms + b.fs_ms),
                "{opt:?} {plan:?}: schedule {sched} + partition {part} vs opt {} + fs {}",
                b.opt_ms,
                b.fs_ms
            );
            // Launch owns structures + search traversals.
            assert!(
                close(
                    trace.stage(StageKind::Launch).device_ms,
                    b.bvh_ms + b.search_ms
                ),
                "{opt:?} {plan:?}: launch slot must equal BVH + Search"
            );
            // Gather is host-side only.
            assert_eq!(trace.stage(StageKind::Gather).device_ms, 0.0);
            if !queries.is_empty() {
                assert!(
                    trace.stage(StageKind::Gather).invocations > 0,
                    "{opt:?} {plan:?}: gather must have run"
                );
            }
        }
    }
}

#[test]
fn plan_validation_is_typed_and_names_the_field() {
    let device = Device::rtx_2080();
    let backend = GpusimBackend::new(&device);
    let points = seeded_cloud(100, 3);
    let mut index = Index::build(&backend, &points[..], EngineConfig::default());
    let queries = vec![Vec3::ZERO];

    let cases: Vec<(QueryPlan, PlanError)> = vec![
        (
            QueryPlan::knn(0.0, 4),
            PlanError::InvalidRadius {
                field: "Knn.r",
                value: 0.0,
            },
        ),
        (
            QueryPlan::knn(1.0, 0),
            PlanError::ZeroNeighborCount { field: "Knn.k" },
        ),
        (
            QueryPlan::range(-3.0, 8),
            PlanError::InvalidRadius {
                field: "Range.r",
                value: -3.0,
            },
        ),
        (QueryPlan::Batch(Vec::new()), PlanError::EmptyBatch),
        (
            QueryPlan::Batch(vec![PlanSlice::new(QueryPlan::knn(1.0, 2), vec![7])]),
            PlanError::QueryIdOutOfRange {
                slice: 0,
                query_id: 7,
                num_queries: 1,
            },
        ),
    ];
    for (plan, expected) in cases {
        let err = index.query(&queries, &plan).unwrap_err();
        assert_eq!(err, SearchError::InvalidPlan(expected.clone()));
        // Every error message names the offending field or structure.
        let msg = err.to_string();
        assert!(
            msg.contains("invalid configuration"),
            "missing error prefix: {msg}"
        );
    }

    // The legacy shim reports the same typed errors.
    let legacy = Rtnn::new(&device, RtnnConfig::new(SearchParams::range(1.0, 0)));
    assert_eq!(
        legacy.search(&points, &queries).unwrap_err(),
        SearchError::InvalidPlan(PlanError::ZeroNeighborCount {
            field: "SearchParams.k"
        })
    );
}
