//! Heavy randomized sweep of the RTNN-vs-brute-force equivalence: 300 random
//! clouds × both modes × all four opt levels (2400 engine runs). Ignored by
//! default because it takes a while in debug builds; run with
//!
//! ```text
//! cargo test --release --test oracle_stress -- --ignored
//! ```

#![allow(deprecated)] // the stress sweep drives the legacy `Rtnn` shim on purpose

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rtnn::verify::check_all;
use rtnn::{OptLevel, Rtnn, RtnnConfig, SearchMode, SearchParams};
use rtnn_gpusim::Device;
use rtnn_math::Vec3;

fn cloud(rng: &mut ChaCha8Rng, half: f32, max_len: usize) -> Vec<Vec3> {
    let len = rng.gen_range(1..max_len);
    (0..len)
        .map(|_| {
            Vec3::new(
                rng.gen_range(-half..half),
                rng.gen_range(-half..half),
                rng.gen_range(-half..half),
            )
        })
        .collect()
}

#[test]
#[ignore = "2400-run stress sweep; run explicitly with -- --ignored"]
fn rtnn_agrees_with_brute_force_on_many_random_instances() {
    let device = Device::rtx_2080();
    for case in 0..300u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5EED ^ (case << 24));
        let points = cloud(&mut rng, 10.0, 200);
        // Queries deliberately overflow the point bounds to exercise the
        // out-of-grid megacell fallback.
        let queries = cloud(&mut rng, 13.0, 50);
        let radius = rng.gen_range(0.3f32..7.0);
        let k = rng.gen_range(1usize..24);
        for mode in [SearchMode::Range, SearchMode::Knn] {
            let params = SearchParams { radius, k, mode };
            for opt in OptLevel::all() {
                let engine = Rtnn::new(&device, RtnnConfig::new(params).with_opt(opt));
                let results = engine.search(&points, &queries).unwrap();
                if let Err((q, e)) = check_all(&points, &queries, &params, &results.neighbors) {
                    panic!(
                        "case {case} {mode:?} {opt:?} r={radius} k={k} n={} query {q}: {e}",
                        points.len()
                    );
                }
            }
        }
    }
}
