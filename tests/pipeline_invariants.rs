//! End-to-end invariants of the simulated pipeline that span several crates:
//! time accounting, optimisation effects at realistic density, approximate
//! modes, and simulator sanity properties from DESIGN.md.

#![allow(deprecated)] // the legacy `Rtnn` shim is the single-plan engine under test

use rtnn::{ApproxMode, OptLevel, Rtnn, RtnnConfig, SearchMode, SearchParams};
use rtnn_data::uniform::{self, UniformParams};
use rtnn_data::{Dataset, DatasetName};
use rtnn_gpusim::Device;
use rtnn_math::{Aabb, Vec3};

fn dense_cloud(n: usize) -> Vec<Vec3> {
    uniform::generate(&UniformParams {
        num_points: n,
        bounds: Aabb::new(Vec3::ZERO, Vec3::splat(10.0)),
        seed: 99,
    })
    .points
}

#[test]
fn breakdown_components_sum_to_total_and_are_nonnegative() {
    let device = Device::rtx_2080();
    let points = dense_cloud(20_000);
    let queries: Vec<Vec3> = points.iter().step_by(5).copied().collect();
    for mode in [SearchMode::Range, SearchMode::Knn] {
        let params = SearchParams {
            radius: 1.0,
            k: 16,
            mode,
        };
        let results = Rtnn::new(&device, RtnnConfig::new(params))
            .search(&points, &queries)
            .unwrap();
        let b = results.breakdown;
        let sum = b.data_ms + b.opt_ms + b.bvh_ms + b.fs_ms + b.search_ms;
        assert!((sum - b.total_ms()).abs() < 1e-9);
        for (label, v) in b.components() {
            assert!(v >= 0.0, "{label} negative");
        }
        assert!(b.search_ms > 0.0);
        assert!(b.bvh_ms > 0.0);
    }
}

#[test]
fn full_optimisations_beat_noopt_on_a_dense_knn_workload() {
    // The headline effect at a scale where search work dominates overheads.
    let device = Device::rtx_2080();
    let points = dense_cloud(30_000);
    let queries = points.clone();
    let params = SearchParams::knn(1.5, 16);
    let time_at = |opt: OptLevel| {
        Rtnn::new(&device, RtnnConfig::new(params).with_opt(opt))
            .search(&points, &queries)
            .unwrap()
            .total_time_ms()
    };
    let noopt = time_at(OptLevel::NoOpt);
    let full = time_at(OptLevel::Full);
    assert!(
        full < noopt,
        "expected the optimised pipeline to win at this density: full {full} ms vs noopt {noopt} ms"
    );
}

#[test]
fn partitioned_search_does_less_shader_work_than_global_search() {
    let device = Device::rtx_2080();
    let points = dense_cloud(25_000);
    let queries: Vec<Vec3> = points.iter().step_by(2).copied().collect();
    let params = SearchParams::knn(2.0, 8);
    let run = |opt: OptLevel| {
        Rtnn::new(&device, RtnnConfig::new(params).with_opt(opt))
            .search(&points, &queries)
            .unwrap()
    };
    let sched = run(OptLevel::Sched);
    let part = run(OptLevel::SchedPartition);
    assert!(part.search_metrics.is_calls < sched.search_metrics.is_calls);
    assert!(
        part.num_partitions > 1,
        "a dense cloud should produce several megacell sizes"
    );
    assert_eq!(
        part.neighbors, sched.neighbors,
        "optimisations must not change the answer"
    );
}

#[test]
fn bundling_never_increases_total_time() {
    let device = Device::rtx_2080();
    // The clustered N-body distribution creates many partitions, which is
    // where bundling matters (Figure 13b).
    let cloud = Dataset::scaled(DatasetName::NBody9M, 400).generate();
    let queries: Vec<Vec3> = cloud.points.iter().step_by(3).copied().collect();
    let params = SearchParams::range(8.0, 32);
    let run = |opt: OptLevel| {
        Rtnn::new(&device, RtnnConfig::new(params).with_opt(opt))
            .search(&cloud.points, &queries)
            .unwrap()
    };
    let unbundled = run(OptLevel::SchedPartition);
    let bundled = run(OptLevel::Full);
    assert!(bundled.num_bundles <= unbundled.num_partitions);
    assert!(
        bundled.total_time_ms() <= unbundled.total_time_ms() * 1.02,
        "bundled {} ms vs unbundled {} ms",
        bundled.total_time_ms(),
        unbundled.total_time_ms()
    );
    // Range search with a K cap may return a *different* valid subset of the
    // in-radius neighbors depending on traversal order, so compare counts
    // (both runs are contract-checked elsewhere), not identities.
    let counts = |r: &rtnn::SearchResults| r.neighbors.iter().map(Vec::len).collect::<Vec<_>>();
    assert_eq!(counts(&bundled), counts(&unbundled));
}

#[test]
fn shrunken_aabb_approximation_is_faster_and_never_reports_false_neighbors() {
    let device = Device::rtx_2080();
    let points = dense_cloud(20_000);
    let queries: Vec<Vec3> = points.iter().step_by(4).copied().collect();
    // K chosen far above the realistic neighbor count (≈ 280 at this density)
    // so the search is effectively unbounded, but small enough that the
    // simulated result buffers still fit in device memory.
    let params = SearchParams::range(1.5, 2_000);
    let exact = Rtnn::new(&device, RtnnConfig::new(params).with_opt(OptLevel::Sched))
        .search(&points, &queries)
        .unwrap();
    let approx = Rtnn::new(
        &device,
        RtnnConfig::new(params)
            .with_opt(OptLevel::Sched)
            .with_approx(ApproxMode::ShrunkenAabb { factor: 0.5 }),
    )
    .search(&points, &queries)
    .unwrap();
    assert!(approx.search_metrics.is_calls < exact.search_metrics.is_calls);
    assert!(approx.breakdown.search_ms < exact.breakdown.search_ms);
    let r2 = params.radius * params.radius;
    for (qi, q) in queries.iter().enumerate() {
        for &id in &approx.neighbors[qi] {
            assert!(q.distance_squared(points[id as usize]) < r2);
        }
        assert!(approx.neighbors[qi].len() <= exact.neighbors[qi].len());
    }
}

#[test]
fn simulated_time_grows_with_query_count() {
    let device = Device::rtx_2080();
    let points = dense_cloud(15_000);
    let params = SearchParams::knn(1.0, 8);
    let engine = Rtnn::new(&device, RtnnConfig::new(params));
    let small: Vec<Vec3> = points.iter().step_by(20).copied().collect();
    let large: Vec<Vec3> = points.iter().step_by(2).copied().collect();
    let t_small = engine.search(&points, &small).unwrap().breakdown.search_ms;
    let t_large = engine.search(&points, &large).unwrap().breakdown.search_ms;
    assert!(t_large > t_small);
}

#[test]
fn knn_results_are_sorted_by_distance() {
    let device = Device::rtx_2080();
    let points = dense_cloud(5_000);
    let queries: Vec<Vec3> = points.iter().step_by(11).copied().collect();
    let params = SearchParams::knn(2.0, 10);
    let results = Rtnn::new(&device, RtnnConfig::new(params))
        .search(&points, &queries)
        .unwrap();
    for (qi, q) in queries.iter().enumerate() {
        let dists: Vec<f32> = results.neighbors[qi]
            .iter()
            .map(|&i| q.distance_squared(points[i as usize]))
            .collect();
        for pair in dists.windows(2) {
            assert!(
                pair[0] <= pair[1],
                "query {qi}: distances not sorted: {dists:?}"
            );
        }
    }
}
