//! Property-based tests (proptest) over the core invariants of the
//! reproduction:
//!
//! * RTNN results equal the brute-force oracle for arbitrary clouds, query
//!   sets, radii and K, in both modes and at every optimisation level;
//! * the query schedule is always a permutation;
//! * query partitioning covers every query exactly once and never exceeds
//!   the full `2r` AABB width;
//! * the bundling plan never costs more than leaving partitions unbundled
//!   and covers every partition exactly once;
//! * BVHs built over arbitrary AABB sets validate structurally.

#![allow(deprecated)] // the property suite drives the legacy `Rtnn` shim on purpose

use proptest::prelude::*;
use rtnn::verify::check_all;
use rtnn::{
    plan_bundles, CostCoefficients, KnnAabbRule, OptLevel, Rtnn, RtnnConfig, SearchMode,
    SearchParams,
};
use rtnn_bvh::{build_bvh, validate_bvh, BuildParams, BvhBuilder};
use rtnn_gpusim::Device;
use rtnn_math::{Aabb, Vec3};

/// A strategy for a random point in a box of the given half-extent.
fn point_in(half: f32) -> impl Strategy<Value = Vec3> {
    (-half..half, -half..half, -half..half).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

/// Clouds of 20–160 points; small enough that the oracle stays cheap but
/// large enough to exercise multi-level BVHs and several partitions.
fn cloud_strategy() -> impl Strategy<Value = Vec<Vec3>> {
    prop::collection::vec(point_in(10.0), 20..160)
}

fn queries_strategy() -> impl Strategy<Value = Vec<Vec3>> {
    prop::collection::vec(point_in(12.0), 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn rtnn_matches_oracle_for_arbitrary_inputs(
        points in cloud_strategy(),
        queries in queries_strategy(),
        radius in 0.5f32..6.0,
        k in 1usize..20,
        mode_is_knn in any::<bool>(),
        opt_idx in 0usize..4,
    ) {
        let device = Device::rtx_2080();
        let mode = if mode_is_knn { SearchMode::Knn } else { SearchMode::Range };
        let params = SearchParams { radius, k, mode };
        let opt = OptLevel::all()[opt_idx];
        let engine = Rtnn::new(&device, RtnnConfig::new(params).with_opt(opt));
        let results = engine.search(&points, &queries).unwrap();
        prop_assert_eq!(results.neighbors.len(), queries.len());
        if let Err((q, e)) = check_all(&points, &queries, &params, &results.neighbors) {
            return Err(TestCaseError::fail(format!("{mode:?} {opt:?} query {q}: {e}")));
        }
    }

    #[test]
    fn schedule_is_always_a_permutation(
        points in cloud_strategy(),
        queries in queries_strategy(),
        radius in 0.5f32..4.0,
    ) {
        let device = Device::rtx_2080();
        let gas = rtnn_optix::Gas::build_from_points(&device, &points, radius, BuildParams::default()).unwrap();
        let schedule = rtnn::schedule_queries(&device, &gas, &points, &queries);
        let mut seen = vec![false; queries.len()];
        for &q in &schedule.order {
            prop_assert!((q as usize) < queries.len());
            prop_assert!(!seen[q as usize], "query {} scheduled twice", q);
            seen[q as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn partitioning_covers_every_query_once_with_bounded_widths(
        points in cloud_strategy(),
        queries in queries_strategy(),
        radius in 0.5f32..6.0,
        k in 1usize..16,
        knn in any::<bool>(),
    ) {
        let device = Device::rtx_2080();
        let mode = if knn { SearchMode::Knn } else { SearchMode::Range };
        let params = SearchParams { radius, k, mode };
        let order: Vec<u32> = (0..queries.len() as u32).collect();
        let set = rtnn::partition::partition_queries(
            &device, &points, &queries, &order, &params, KnnAabbRule::Guaranteed, 1 << 15,
        );
        prop_assert_eq!(set.total_queries(), queries.len());
        let mut seen = vec![false; queries.len()];
        for p in &set.partitions {
            prop_assert!(p.aabb_width > 0.0);
            prop_assert!(p.aabb_width <= 2.0 * radius * (1.0 + 1e-5));
            for &q in &p.query_ids {
                prop_assert!(!seen[q as usize]);
                seen[q as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bundling_never_costs_more_than_no_bundling(
        points in cloud_strategy(),
        queries in queries_strategy(),
        radius in 0.5f32..6.0,
        k in 1usize..16,
        knn in any::<bool>(),
    ) {
        let device = Device::rtx_2080();
        let mode = if knn { SearchMode::Knn } else { SearchMode::Range };
        let params = SearchParams { radius, k, mode };
        let order: Vec<u32> = (0..queries.len() as u32).collect();
        let set = rtnn::partition::partition_queries(
            &device, &points, &queries, &order, &params, KnnAabbRule::Guaranteed, 1 << 15,
        );
        let coeffs = CostCoefficients::calibrate(&device);
        let plan = plan_bundles(&set.partitions, points.len(), &params, &coeffs);
        prop_assert!(plan.estimated_cost_ms <= plan.unbundled_cost_ms + 1e-12);
        // Every partition appears in exactly one bundle.
        let mut seen = vec![false; set.partitions.len()];
        for group in &plan.groups {
            for &i in group {
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bvh_builders_always_produce_valid_trees(
        points in cloud_strategy(),
        width in 0.01f32..5.0,
        builder_idx in 0usize..3,
        max_leaf in 1u32..9,
    ) {
        let builder = [BvhBuilder::Lbvh, BvhBuilder::MedianSplit, BvhBuilder::BinnedSah][builder_idx];
        let aabbs: Vec<Aabb> = points.iter().map(|&p| Aabb::cube(p, width)).collect();
        let bvh = build_bvh(&aabbs, BuildParams { builder, max_leaf_size: max_leaf });
        prop_assert!(validate_bvh(&bvh).is_ok());
        prop_assert_eq!(bvh.num_primitives(), points.len());
    }

    #[test]
    fn point_probe_traversal_equals_linear_scan(
        points in cloud_strategy(),
        query in point_in(12.0),
        width in 0.1f32..6.0,
    ) {
        // The fundamental equivalence of Section 3.1: traversing the BVH with
        // a short ray finds exactly the AABBs that contain the query point.
        let aabbs: Vec<Aabb> = points.iter().map(|&p| Aabb::cube(p, width)).collect();
        let bvh = build_bvh(&aabbs, BuildParams::default());
        let mut via_bvh = bvh.primitives_containing(query);
        via_bvh.sort_unstable();
        let mut via_scan: Vec<u32> = aabbs
            .iter()
            .enumerate()
            .filter(|(_, a)| a.contains_point(query))
            .map(|(i, _)| i as u32)
            .collect();
        via_scan.sort_unstable();
        prop_assert_eq!(via_bvh, via_scan);
    }
}
