//! Cross-crate integration tests: the RTNN engine, every baseline and every
//! dataset family must agree with the brute-force oracle, on both search
//! modes and at every optimisation level.

#![allow(deprecated)] // the baseline comparison drives the legacy `Rtnn` shim on purpose

use rtnn::verify::check_all;
use rtnn::{OptLevel, Rtnn, RtnnConfig, SearchMode, SearchParams};
use rtnn_baselines::bruteforce::BruteForce;
use rtnn_baselines::grid_knn::GridKnn;
use rtnn_baselines::kdtree::KdTreeSearch;
use rtnn_baselines::octree::OctreeSearch;
use rtnn_baselines::uniform_grid::UniformGridSearch;
use rtnn_baselines::{Baseline, SearchRequest};
use rtnn_data::{Dataset, DatasetName};
use rtnn_gpusim::Device;
use rtnn_math::Vec3;

/// One small instance of each dataset family plus a radius that yields a
/// healthy number of neighbors at this scale.
fn families() -> Vec<(String, Vec<Vec3>, f32)> {
    let configs = [
        (DatasetName::Kitti1M, 2.5f32),
        (DatasetName::Buddha4_6M, 0.08),
        (DatasetName::NBody9M, 12.0),
    ];
    configs
        .iter()
        .map(|&(name, radius)| {
            let cloud = Dataset::scaled(name, name.paper_points() / 2500).generate();
            (cloud.name.clone(), cloud.points, radius)
        })
        .collect()
}

fn queries_of(points: &[Vec3]) -> Vec<Vec3> {
    points.iter().step_by(7).copied().collect()
}

#[test]
fn rtnn_matches_oracle_on_every_dataset_family_and_opt_level() {
    let device = Device::rtx_2080();
    for (name, points, radius) in families() {
        let queries = queries_of(&points);
        for mode in [SearchMode::Range, SearchMode::Knn] {
            let params = SearchParams {
                radius,
                k: 12,
                mode,
            };
            for opt in OptLevel::all() {
                let engine = Rtnn::new(&device, RtnnConfig::new(params).with_opt(opt));
                let results = engine.search(&points, &queries).unwrap();
                check_all(&points, &queries, &params, &results.neighbors)
                    .unwrap_or_else(|(q, e)| panic!("{name}, {mode:?}, {opt:?}, query {q}: {e}"));
            }
        }
    }
}

#[test]
fn every_baseline_matches_oracle_on_every_dataset_family() {
    let device = Device::rtx_2080();
    let range_baselines: Vec<Box<dyn Baseline>> = vec![
        Box::new(BruteForce),
        Box::new(UniformGridSearch),
        Box::new(OctreeSearch),
        Box::new(KdTreeSearch),
    ];
    let knn_baselines: Vec<Box<dyn Baseline>> = vec![
        Box::new(BruteForce),
        Box::new(GridKnn),
        Box::new(KdTreeSearch),
    ];
    for (name, points, radius) in families() {
        let queries = queries_of(&points);
        let request = SearchRequest::new(radius, 12);
        for baseline in &range_baselines {
            let run = baseline
                .range_search(&device, &points, &queries, request)
                .unwrap();
            check_all(
                &points,
                &queries,
                &SearchParams::range(radius, 12),
                &run.neighbors,
            )
            .unwrap_or_else(|(q, e)| panic!("{name}, {}, query {q}: {e}", baseline.name()));
        }
        for baseline in &knn_baselines {
            let run = baseline
                .knn_search(&device, &points, &queries, request)
                .unwrap();
            check_all(
                &points,
                &queries,
                &SearchParams::knn(radius, 12),
                &run.neighbors,
            )
            .unwrap_or_else(|(q, e)| panic!("{name}, {}, query {q}: {e}", baseline.name()));
        }
    }
}

#[test]
fn rtnn_and_kdtree_report_identical_knn_distance_profiles() {
    // Beyond the per-query contract: aggregate distance sums must agree,
    // which catches systematic off-by-one-neighbor errors.
    let device = Device::rtx_2080();
    let cloud = Dataset::scaled(DatasetName::Dragon3_6M, 2000).generate();
    let queries = queries_of(&cloud.points);
    let params = SearchParams::knn(0.05, 8);
    let rtnn = Rtnn::new(&device, RtnnConfig::new(params))
        .search(&cloud.points, &queries)
        .unwrap();
    let kd = KdTreeSearch
        .knn_search(
            &device,
            &cloud.points,
            &queries,
            SearchRequest::new(0.05, 8),
        )
        .unwrap();
    let sum_of = |results: &Vec<Vec<u32>>| -> f64 {
        results
            .iter()
            .zip(&queries)
            .map(|(ids, q)| {
                ids.iter()
                    .map(|&i| q.distance(cloud.points[i as usize]) as f64)
                    .sum::<f64>()
            })
            .sum()
    };
    let a = sum_of(&rtnn.neighbors);
    let b = sum_of(&kd.neighbors);
    assert!(
        (a - b).abs() <= 1e-3 * (1.0 + a.abs()),
        "distance sums diverge: {a} vs {b}"
    );
}

#[test]
fn results_are_deterministic_across_runs() {
    // Pin the worker-thread count: the comparison below includes simulated
    // timings, which must not depend on host scheduling. (Results are
    // thread-count independent by design; see tests/determinism.rs.)
    rtnn_parallel::set_num_threads(4);
    let device = Device::rtx_2080();
    let cloud = Dataset::scaled(DatasetName::Kitti6M, 4000).generate();
    let queries = queries_of(&cloud.points);
    let params = SearchParams::knn(2.0, 6);
    let engine = Rtnn::new(&device, RtnnConfig::new(params));
    let a = engine.search(&cloud.points, &queries).unwrap();
    let b = engine.search(&cloud.points, &queries).unwrap();
    assert_eq!(a.neighbors, b.neighbors);
    assert_eq!(a.breakdown, b.breakdown);
    assert_eq!(a.search_metrics, b.search_metrics);
}

#[test]
fn both_device_presets_agree_on_results_but_not_on_time() {
    // Same pin (and the same value) as `results_are_deterministic_across_runs`
    // so the two timing-sensitive tests cannot race each other on the global.
    rtnn_parallel::set_num_threads(4);
    let cloud = Dataset::scaled(DatasetName::Bunny360K, 300).generate();
    let queries = queries_of(&cloud.points);
    let params = SearchParams::range(0.03, 16);
    let slow = Rtnn::new(&Device::rtx_2080(), RtnnConfig::new(params))
        .search(&cloud.points, &queries)
        .unwrap();
    let fast_device = Device::rtx_2080_ti();
    let fast = Rtnn::new(&fast_device, RtnnConfig::new(params))
        .search(&cloud.points, &queries)
        .unwrap();
    assert_eq!(
        slow.neighbors, fast.neighbors,
        "results must be device-independent"
    );
    assert!(
        fast.total_time_ms() < slow.total_time_ms(),
        "the 68-SM 2080 Ti must be simulated as faster than the 46-SM 2080"
    );
}
