//! Serving determinism: every response the `rtnn-serve` stack produces
//! must be bit-equal to a direct `Index::query` call — regardless of
//! request arrival order, coalescing window, worker thread count, and
//! shard count.
//!
//! This is the contract that makes the serving layer transparent: a
//! client cannot tell (from results) whether its request executed alone
//! on one index or was fused with strangers' traffic on a 5-shard fleet.
//! Range caps are chosen non-truncating and the cloud is a seeded random
//! one (no exact distance ties) — the conditions under which the
//! deterministic shard merge reproduces single-index results exactly (see
//! `rtnn::ShardMerge`).

use rtnn::{EngineConfig, GpusimBackend, Index, PlanSlice, QueryPlan};
use rtnn_data::uniform::{self, UniformParams};
use rtnn_gpusim::Device;
use rtnn_math::Vec3;
use rtnn_serve::{
    poisson_arrivals, run_virtual, QueryService, Request, ServeConfig, ShardedIndex, TickExecutor,
};

fn scene() -> Vec<Vec3> {
    uniform::generate(&UniformParams {
        num_points: 2_500,
        seed: 0x00DE_7E57,
        ..Default::default()
    })
    .points
}

/// A mixed request population: KNN at several (r, k), range with generous
/// caps, and one heterogeneous batch request.
fn requests(points: &[Vec3]) -> Vec<Request> {
    let side = rtnn_math::Aabb::from_points(points).longest_extent();
    let base_r = side * (8.0 / points.len() as f32).cbrt();
    let mut reqs: Vec<Request> = (0..15)
        .map(|i| {
            let queries: Vec<Vec3> = points
                .iter()
                .skip(i * 83)
                .step_by(151 + i * 13)
                .take(8 + i % 5)
                .copied()
                .collect();
            let plan = match i % 4 {
                0 => QueryPlan::knn(base_r, 8),
                1 => QueryPlan::range(base_r * 0.8, 100_000),
                2 => QueryPlan::knn(base_r * 1.4, 3),
                _ => QueryPlan::range(base_r * 1.2, 100_000),
            };
            Request::new(queries, plan)
        })
        .collect();
    // One batch request: two plans over one query set.
    let queries: Vec<Vec3> = points.iter().step_by(211).take(12).copied().collect();
    let n = queries.len() as u32;
    reqs.push(Request::new(
        queries,
        QueryPlan::Batch(vec![
            PlanSlice::new(QueryPlan::knn(base_r, 6), (0..n / 2).collect()),
            PlanSlice::new(QueryPlan::range(base_r, 100_000), (n / 2..n).collect()),
        ]),
    ));
    reqs
}

fn expected_responses(
    backend: &GpusimBackend<'_>,
    points: &[Vec3],
    reqs: &[Request],
) -> Vec<Vec<Vec<u32>>> {
    let mut index = Index::build(backend, points, EngineConfig::default());
    reqs.iter()
        .map(|r| index.query(&r.queries, &r.plan).unwrap().neighbors)
        .collect()
}

/// Drive `executor` through a live service with `client_threads` client
/// threads submitting `reqs` in `order`, asserting every response equals
/// its direct-query reference.
fn serve_and_check<E: TickExecutor>(
    executor: &mut E,
    reqs: &[Request],
    expected: &[Vec<Vec<u32>>],
    config: ServeConfig,
    order: &[usize],
    client_threads: usize,
) {
    let (service, client) = QueryService::new(config);
    crossbeam::thread::scope(|s| {
        for chunk in order.chunks(order.len().div_ceil(client_threads)) {
            let client = client.clone();
            s.spawn(move |_| {
                for &ri in chunk {
                    let response = client.call(reqs[ri].clone());
                    assert_eq!(
                        response.outcome.as_ref().expect("request served"),
                        &expected[ri],
                        "request {ri} must be bit-equal to direct Index::query"
                    );
                }
            });
        }
        drop(client);
        service.run(executor);
    })
    .unwrap();
}

#[test]
fn responses_are_bit_equal_across_windows_orders_threads_and_shards() {
    let device = Device::rtx_2080();
    let backend = GpusimBackend::new(&device);
    let points = scene();
    let reqs = requests(&points);
    let expected = expected_responses(&backend, &points, &reqs);

    let forward: Vec<usize> = (0..reqs.len()).collect();
    let reversed: Vec<usize> = (0..reqs.len()).rev().collect();
    let interleaved: Vec<usize> = (0..reqs.len()).map(|i| (i * 7 + 3) % reqs.len()).collect();

    let configs = [
        ServeConfig::default().without_coalescing(),
        ServeConfig::default().with_window_us(1),
        ServeConfig::default()
            .with_window_us(3_000)
            .with_max_batch(16),
    ];
    for shards in [0usize, 1, 2, 5] {
        for (ci, config) in configs.iter().enumerate() {
            for (oi, order) in [&forward, &reversed, &interleaved].iter().enumerate() {
                // Fresh executor per run: warm-up must not matter, but a
                // fresh one also proves cold-start determinism.
                let threads = 1 + (ci + oi) % 3 + 1; // 2..=4 client threads
                if shards == 0 {
                    let mut index = Index::build(&backend, &points[..], EngineConfig::default());
                    serve_and_check(&mut index, &reqs, &expected, *config, order, threads);
                } else {
                    let mut sharded =
                        ShardedIndex::build(&backend, &points, EngineConfig::default(), shards);
                    serve_and_check(&mut sharded, &reqs, &expected, *config, order, threads);
                }
            }
        }
    }
}

#[test]
fn sharded_index_matches_direct_queries_outside_the_service() {
    let device = Device::rtx_2080();
    let backend = GpusimBackend::new(&device);
    let points = scene();
    let reqs = requests(&points);
    let expected = expected_responses(&backend, &points, &reqs);
    for shards in [1usize, 2, 5] {
        let mut sharded = ShardedIndex::build(&backend, &points, EngineConfig::default(), shards);
        for (ri, req) in reqs.iter().enumerate() {
            let got = sharded.query(&req.queries, &req.plan).unwrap();
            assert_eq!(
                got.neighbors, expected[ri],
                "{shards} shards, request {ri} (plan {:?})",
                req.plan
            );
        }
    }
}

#[test]
fn virtual_time_replay_is_bit_deterministic() {
    let device = Device::rtx_2080();
    let backend = GpusimBackend::new(&device);
    let points = scene();
    let reqs = requests(&points);
    let arrivals = poisson_arrivals(reqs.len(), 5_000.0, 42);
    let cfg = ServeConfig::default().with_window_us(400);
    let run = |threads: usize| {
        rtnn_parallel::set_num_threads(threads);
        let mut index = Index::build(&backend, &points[..], EngineConfig::default());
        let report = run_virtual(&mut index, &reqs, &arrivals, &cfg);
        rtnn_parallel::set_num_threads(0);
        (
            report.stats.latencies.clone(),
            report.stats.sim_ms,
            report.stats.ticks,
            report.achieved_qps,
        )
    };
    let a = run(1);
    let b = run(4);
    assert_eq!(a, b, "virtual-time replay must not depend on host threads");
}
