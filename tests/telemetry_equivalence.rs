//! Telemetry equivalence suite: recording must never change what the
//! library computes, and what it records must be internally consistent.
//!
//! Three contracts are pinned here:
//!
//! 1. **Bit-equality** — for every backend × plan kind, the neighbor lists
//!    under a scoped telemetry sink at every `RTNN_TELEMETRY` level
//!    (`off`/`basic`/`full`) are identical to an unobserved run.
//! 2. **Span-tree well-formedness** — one observed query yields a single
//!    rooted tree whose child intervals nest inside their parents, and
//!    whose `stage.*` + `accel.ensure` spans account for exactly the
//!    device total the `PipelineTrace` reports (`accel.build`/`refit`
//!    spans are nested detail of `ensure`, not additional time).
//! 3. **Deterministic snapshots** — the virtual-time load harness
//!    (`run_virtual_observed`) produces bit-identical snapshots and JSONL
//!    exports across runs, and the same `LoadReport` as the unobserved
//!    replay.
//! 4. **Invisible profiling and flight recording** — with the continuous
//!    profiler attached and the SLO flight recorder riding the replay,
//!    results stay bit-equal per backend, and a breached SLO pins the
//!    same exemplar trace on every run of the same schedule.

use rtnn::telemetry::{
    verify_jsonl_roundtrip, FlightRecorder, SignatureProfiler, SloConfig, SloEvent, Telemetry,
    TelemetryLevel,
};
use rtnn::{Backend, EngineConfig, GpusimBackend, Index, OptixBackend, PlanSlice, QueryPlan};
use rtnn_baselines::BruteForceBackend;
use rtnn_data::uniform::{self, UniformParams};
use rtnn_gpusim::Device;
use rtnn_math::Vec3;
use rtnn_serve::{
    poisson_arrivals, run_virtual, run_virtual_observed, run_virtual_recorded, Request, ServeConfig,
};

fn seeded_cloud(n: usize, seed: u64) -> Vec<Vec3> {
    uniform::generate(&UniformParams {
        num_points: n,
        seed,
        ..Default::default()
    })
    .points
}

const LEVELS: [TelemetryLevel; 3] = [
    TelemetryLevel::Off,
    TelemetryLevel::Basic,
    TelemetryLevel::Full,
];

#[test]
fn results_are_bit_equal_at_every_level_for_every_backend_and_plan_kind() {
    let device = Device::rtx_2080();
    let points = seeded_cloud(2500, 0x7E1E);
    let queries: Vec<Vec3> = points.iter().step_by(7).copied().collect();
    let n = queries.len() as u32;
    let plans = [
        QueryPlan::knn(5.0, 8),
        QueryPlan::range(4.0, 64),
        QueryPlan::Batch(vec![
            PlanSlice::new(QueryPlan::knn(4.5, 5), (0..n / 2).collect()),
            PlanSlice::new(QueryPlan::range(6.0, 32), (n / 2..n).collect()),
        ]),
    ];
    let backends: Vec<(&str, Box<dyn Backend + '_>)> = vec![
        ("gpusim", Box::new(GpusimBackend::new(&device))),
        ("optix-shim", Box::new(OptixBackend::new(&device))),
        ("brute-force", Box::new(BruteForceBackend::new(&device))),
    ];

    for (name, backend) in &backends {
        // Unobserved baseline: whatever the global sink is (off in tests).
        let mut index = Index::build(backend.as_ref(), &points[..], EngineConfig::default());
        let baseline: Vec<_> = plans
            .iter()
            .map(|p| index.query(&queries, p).expect("plan").neighbors)
            .collect();
        for level in LEVELS {
            let sink = Telemetry::new(level);
            let observed = Telemetry::scoped(&sink, || {
                let mut index =
                    Index::build(backend.as_ref(), &points[..], EngineConfig::default());
                plans
                    .iter()
                    .map(|p| index.query(&queries, p).expect("plan").neighbors)
                    .collect::<Vec<_>>()
            });
            assert_eq!(
                observed, baseline,
                "{name} at telemetry level {level}: results must be bit-equal"
            );
            // What each level records is part of the contract too.
            let snapshot = sink.snapshot();
            assert_eq!(
                !snapshot.metrics.counters.is_empty(),
                level.metrics_enabled(),
                "{name} at {level}: metrics iff the level enables them"
            );
            assert_eq!(
                !snapshot.spans.is_empty(),
                level.spans_enabled(),
                "{name} at {level}: spans iff the level enables them"
            );
        }
    }
}

#[test]
fn profiler_and_flight_recorder_are_bit_invisible_for_every_backend() {
    let device = Device::rtx_2080();
    let points = seeded_cloud(2500, 0x7E1E);
    let queries: Vec<Vec3> = points.iter().step_by(7).copied().collect();
    let n = queries.len() as u32;
    let plans = [
        QueryPlan::knn(5.0, 8),
        QueryPlan::range(4.0, 64),
        QueryPlan::Batch(vec![
            PlanSlice::new(QueryPlan::knn(4.5, 5), (0..n / 2).collect()),
            PlanSlice::new(QueryPlan::range(6.0, 32), (n / 2..n).collect()),
        ]),
    ];
    let backends: Vec<(&str, Box<dyn Backend + '_>)> = vec![
        ("gpusim", Box::new(GpusimBackend::new(&device))),
        ("optix-shim", Box::new(OptixBackend::new(&device))),
        ("brute-force", Box::new(BruteForceBackend::new(&device))),
    ];

    for (name, backend) in &backends {
        // Baseline under an explicit `off` sink — the strongest form of
        // "recording everything equals recording nothing".
        let off = Telemetry::new(TelemetryLevel::Off);
        let baseline = Telemetry::scoped(&off, || {
            let mut index = Index::build(backend.as_ref(), &points[..], EngineConfig::default());
            plans
                .iter()
                .map(|p| index.query(&queries, p).expect("plan").neighbors)
                .collect::<Vec<_>>()
        });

        // Full telemetry + continuous profiler attached.
        let sink = Telemetry::new(TelemetryLevel::Full);
        sink.enable_profiler(SignatureProfiler::new(0.2));
        let profiled = Telemetry::scoped(&sink, || {
            let mut index = Index::build(backend.as_ref(), &points[..], EngineConfig::default());
            plans
                .iter()
                .map(|p| index.query(&queries, p).expect("plan").neighbors)
                .collect::<Vec<_>>()
        });
        assert_eq!(
            profiled, baseline,
            "{name}: profiler-on results must be bit-equal to telemetry-off"
        );

        // The profiler actually folded the executions it watched, keyed on
        // the live signature.
        let profile = sink.profile_snapshot().expect("profiler attached");
        let sig = profile
            .lookup("knn", points.len(), backend.name())
            .unwrap_or_else(|| panic!("{name}: knn signature missing from {profile:?}"));
        assert_eq!(sig.executions, 1, "{name}: one knn plan ran");
        assert!(sig.total.mean_ms >= 0.0);
    }
}

#[test]
fn one_observed_query_yields_a_nested_tree_that_accounts_device_time() {
    let device = Device::rtx_2080();
    let backend = GpusimBackend::new(&device);
    let points = seeded_cloud(4000, 0x51A9);
    let queries: Vec<Vec3> = points.iter().step_by(11).copied().collect();

    let sink = Telemetry::new(TelemetryLevel::Full);
    let results = Telemetry::scoped(&sink, || {
        let mut index = Index::build(&backend, &points[..], EngineConfig::default());
        index
            .query(&queries, &QueryPlan::knn(5.0, 8))
            .expect("observed knn")
    });
    let snapshot = sink.snapshot();

    // A single rooted tree: the query span is the root, everything else is
    // in its subtree, and every child interval nests inside its parent.
    snapshot.check_nesting(1e-6).expect("span nesting");
    let roots = snapshot.roots();
    assert_eq!(roots.len(), 1, "one query call, one root span");
    let root = roots[0];
    assert_eq!(root.name, "index.query.knn");
    assert_eq!(
        snapshot.subtree(root.id).len(),
        snapshot.spans.len(),
        "every span recorded during the call hangs off the query root"
    );

    // Device-time accounting: the stage spans plus the structure-ensure
    // spans must sum to exactly what the PipelineTrace reports (the
    // accel.build/accel.refit spans underneath ensure are *detail* of the
    // ensure interval, not additional device time).
    let accounted: f64 = snapshot
        .spans
        .iter()
        .filter(|s| s.name.starts_with("stage.") || s.name == "accel.ensure")
        .map(|s| s.attr("device_ms").expect("stage spans carry device_ms"))
        .sum();
    let expected = results.trace.device_total_ms();
    assert!(
        (accounted - expected).abs() <= 1e-6 * expected.max(1.0),
        "span device_ms attrs sum to {accounted} ms but the trace reports {expected} ms"
    );
    assert_eq!(
        root.attr("device_ms"),
        Some(expected),
        "the query root carries the trace's device total"
    );

    // The same snapshot must survive both exporters.
    verify_jsonl_roundtrip(&snapshot).expect("JSONL round trip");
    let prom = snapshot.to_prometheus();
    assert!(prom.contains("rtnn_index_queries 1"));
}

#[test]
fn breached_slo_pins_the_same_exemplar_on_every_replay() {
    let device = Device::rtx_2080();
    let backend = GpusimBackend::new(&device);
    let points = seeded_cloud(3000, 0x0DE7);
    let requests: Vec<Request> = (0..50)
        .map(|i| {
            let queries: Vec<Vec3> = (0..3 + i % 4)
                .map(|j| points[(i * 173 + j * 19) % points.len()])
                .collect();
            Request::new(queries, QueryPlan::knn(3.0, 6))
        })
        .collect();
    let arrivals = poisson_arrivals(requests.len(), 1_500.0, 0xA11);
    let config = ServeConfig::default().with_window_us(400).with_max_batch(8);
    // A p50 target of 0 ms breaches deterministically once the window has
    // its minimum samples: every virtual latency is positive.
    let slo = SloConfig {
        quantile: 0.5,
        target_ms: 0.0,
        window: 16,
        min_samples: 4,
    };

    let mut plain_index = Index::build(&backend, &points[..], EngineConfig::default());
    let plain = run_virtual(&mut plain_index, &requests, &arrivals, &config);

    let run = || {
        let mut index = Index::build(&backend, &points[..], EngineConfig::default());
        let mut recorder = FlightRecorder::with_slo(64, slo);
        let (report, _) = run_virtual_recorded(
            &mut index,
            &requests,
            &arrivals,
            &config,
            TelemetryLevel::Full,
            &mut recorder,
        );
        (report, recorder)
    };
    let (report_a, flight_a) = run();
    let (_, flight_b) = run();

    assert_eq!(
        report_a.stats, plain.stats,
        "flight recording must not perturb the replay"
    );
    assert!(
        flight_a
            .events()
            .iter()
            .any(|e| matches!(e, SloEvent::Breach { .. })),
        "the 0 ms target must breach: {:?}",
        flight_a.events()
    );
    // Reproducibility is the whole point of the flight recorder: identical
    // replays emit identical events and pin the identical exemplar trace.
    assert_eq!(flight_a.events(), flight_b.events());
    assert_eq!(flight_a.pinned(), flight_b.pinned());
    assert_eq!(flight_a.to_jsonl(), flight_b.to_jsonl());

    // The exemplar is attributable: a real request trace with a per-stage
    // breakdown whose dominant stage is identified.
    let exemplar = &flight_a.pinned()[0].trace;
    assert_eq!(exemplar.name, "serve.request.knn");
    assert!(exemplar.latency_ms > 0.0);
    assert!(
        exemplar.dominant_stage().is_some(),
        "exemplar carries its stage breakdown: {exemplar:?}"
    );
}

#[test]
fn virtual_time_replays_are_unperturbed_and_snapshot_deterministically() {
    let device = Device::rtx_2080();
    let backend = GpusimBackend::new(&device);
    let points = seeded_cloud(3000, 0x0DE7);
    let requests: Vec<Request> = (0..40)
        .map(|i| {
            let queries: Vec<Vec3> = (0..3 + i % 4)
                .map(|j| points[(i * 173 + j * 19) % points.len()])
                .collect();
            let plan = if i % 2 == 0 {
                QueryPlan::knn(3.0, 6)
            } else {
                QueryPlan::range(2.5, 32)
            };
            Request::new(queries, plan)
        })
        .collect();
    let arrivals = poisson_arrivals(requests.len(), 1_500.0, 0xA11);
    let config = ServeConfig::default().with_window_us(400).with_max_batch(8);

    let mut plain_index = Index::build(&backend, &points[..], EngineConfig::default());
    let plain = run_virtual(&mut plain_index, &requests, &arrivals, &config);

    let mut snapshots = Vec::new();
    for _ in 0..2 {
        let mut index = Index::build(&backend, &points[..], EngineConfig::default());
        let (report, snapshot) = run_virtual_observed(
            &mut index,
            &requests,
            &arrivals,
            &config,
            TelemetryLevel::Full,
        );
        assert_eq!(
            report.stats, plain.stats,
            "observation must not perturb the virtual replay"
        );
        snapshots.push(snapshot);
    }
    assert_eq!(
        snapshots[0], snapshots[1],
        "observed replays must snapshot bit-identically"
    );
    assert_eq!(
        snapshots[0].to_jsonl(),
        snapshots[1].to_jsonl(),
        "and export bit-identical JSONL"
    );
    let snapshot = &snapshots[0];
    snapshot.check_nesting(1e-9).expect("span nesting");

    // Every request has a root span; every tick nests under the request
    // that opened it.
    let request_spans: Vec<_> = snapshot
        .spans
        .iter()
        .filter(|s| s.name.starts_with("serve.request."))
        .collect();
    assert_eq!(request_spans.len(), requests.len());
    assert!(request_spans.iter().all(|s| s.parent.is_none()));
    let tick_spans: Vec<_> = snapshot.spans_named("serve.tick").collect();
    assert!(!tick_spans.is_empty());
    for tick in &tick_spans {
        let parent = tick.parent.expect("ticks are parented under a request");
        assert!(
            snapshot
                .span(parent)
                .is_some_and(|p| p.name.starts_with("serve.request.")),
            "tick's parent must be the request that opened it"
        );
    }
    // Latency histograms cover every request, with the p999 tail exposed.
    let knn = snapshot
        .metrics
        .histogram("serve.latency.knn")
        .expect("knn latency histogram");
    let range = snapshot
        .metrics
        .histogram("serve.latency.range")
        .expect("range latency histogram");
    assert_eq!(knn.count + range.count, requests.len() as u64);
    assert!(knn.p999 >= knn.p50);
}
